package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/engine/flink"
	"repro/internal/engine/spark"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// trials per configuration, mirroring the paper's ~5 runs.
const trials = 5

// graph dataset byte sizes of Table IV.
var (
	smallBytes  = 14029 * core.MB // 13.7 GB
	mediumBytes = 30822 * core.MB // 30.1 GB
	largeBytes  = 1229 * core.GB  // 1.2 TB
	teraBytes   = 3584 * core.GB  // 3.5 TB
)

func init() {
	register("tab1", "Operators used in each workload (Table I)", runTab1)
	register("tab2", "Word Count and Grep configuration settings (Table II)", runTab2)
	register("fig1", "Word Count — fixed problem size per node (24 GB)", runFig1)
	register("fig2", "Word Count — 16 nodes, different datasets", runFig2)
	register("fig3", "Word Count resource usage — 32 nodes, 768 GB", runFig3)
	register("fig4", "Grep — fixed problem size per node (24 GB)", runFig4)
	register("fig5", "Grep — 16 nodes, different datasets", runFig5)
	register("fig6", "Grep resource usage — 32 nodes, 768 GB", runFig6)
	register("tab3", "Tera Sort configuration settings (Table III)", runTab3)
	register("fig7", "Tera Sort — fixed problem size per node (32 GB)", runFig7)
	register("fig8", "Tera Sort — adding nodes, same dataset (3.5 TB)", runFig8)
	register("fig9", "Tera Sort resource usage — 55 nodes, 3.5 TB", runFig9)
	register("fig10", "K-Means resource usage — 24 nodes, 10 iterations", runFig10)
	register("fig11", "K-Means — increasing cluster size, same dataset", runFig11)
	register("tab4", "Graph dataset characteristics (Table IV)", runTab4)
	register("tab5", "Configuration settings for the Small Graph (Table V)", runTab5)
	register("tab6", "Configuration settings for the Medium Graph (Table VI)", runTab6)
	register("fig12", "Page Rank — Small Graph (increasing cluster size)", runFig12)
	register("fig13", "Page Rank — Medium Graph (increasing cluster size)", runFig13)
	register("fig14", "Connected Components — Small Graph", runFig14)
	register("fig15", "Connected Components — Medium Graph", runFig15)
	register("fig16", "Page Rank resource usage — 27 nodes, Small Graph", runFig16)
	register("fig17", "Connected Components resource usage — 27 nodes, Medium Graph", runFig17)
	register("tab7", "Page Rank and Connected Components on the Large Graph (Table VII)", runTab7)
}

// scalingReport runs a job across node counts with per-node configs and
// collects mean ± std rows.
func scalingReport(id, title string, nodeCounts []int,
	jobFor func(nodes int) sim.Job, confFor func(nodes int) *core.Config,
	labelFor func(nodes int) string, paperNotes map[int]string) (*Report, error) {
	rep := &Report{ID: id, Title: title}
	for _, n := range nodeCounts {
		conf := confFor(n)
		job := jobFor(n)
		row := skippedRow(labelFor(n), paperNotes[n])
		for _, engine := range enabled([]sim.EngineKind{sim.Spark, sim.Flink}) {
			p := sim.Params{Spec: cluster.Grid5000(n), Engine: engine, Conf: conf}
			times, err := sim.Trials(job, p, trials)
			if err != nil {
				return nil, fmt.Errorf("%s at %d nodes (%v): %w", id, n, engine, err)
			}
			s := stats.Summarize(times)
			if engine == sim.Spark {
				row.Spark, row.SparkStd = s.Mean, s.Std
			} else {
				row.Flink, row.FlinkStd = s.Mean, s.Std
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// usageReport runs one configuration per engine and renders the
// correlation figures.
func usageReport(id, title string, nodes int, job sim.Job, conf *core.Config, notes []string) (*Report, error) {
	rep := &Report{ID: id, Title: title, Notes: notes}
	for _, engine := range enabled([]sim.EngineKind{sim.Flink, sim.Spark}) {
		res := job.Run(sim.Params{Spec: cluster.Grid5000(nodes), Engine: engine, Conf: conf})
		if res.Err != nil {
			return nil, fmt.Errorf("%s (%v): %w", id, engine, res.Err)
		}
		rep.Figures = append(rep.Figures, res.Corr.Render(64))
		row := skippedRow(engine.String(), "")
		if engine == sim.Spark {
			row.Spark = res.Seconds
		} else {
			row.Flink = res.Seconds
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// --- Batch ----------------------------------------------------------------

func runFig1() (*Report, error) {
	return scalingReport("fig1", "Word Count weak scaling, 24 GB/node",
		[]int{2, 4, 8, 16, 32},
		func(n int) sim.Job { return sim.WordCountJob{TotalBytes: core.ByteSize(n) * 24 * core.GB} },
		tab2Config,
		func(n int) string { return fmt.Sprintf("%d nodes", n) },
		map[int]string{32: "paper: ≈572/543 s; Flink slightly better at 16-32 nodes"})
}

func runFig2() (*Report, error) {
	sizes := []int{24, 27, 30, 33}
	rep := &Report{ID: "fig2", Title: "Word Count, 16 nodes, growing datasets"}
	for _, gb := range sizes {
		job := sim.WordCountJob{TotalBytes: core.ByteSize(16*gb) * core.GB}
		row := skippedRow(fmt.Sprintf("%d GB/node", gb), "paper: Flink ≈10% faster")
		for _, engine := range enabled([]sim.EngineKind{sim.Spark, sim.Flink}) {
			p := sim.Params{Spec: cluster.Grid5000(16), Engine: engine, Conf: tab2Config(16)}
			times, err := sim.Trials(job, p, trials)
			if err != nil {
				return nil, err
			}
			s := stats.Summarize(times)
			if engine == sim.Spark {
				row.Spark, row.SparkStd = s.Mean, s.Std
			} else {
				row.Flink, row.FlinkStd = s.Mean, s.Std
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func runFig3() (*Report, error) {
	return usageReport("fig3", "Word Count resource usage (32 nodes, 768 GB)",
		32, sim.WordCountJob{TotalBytes: 768 * core.GB}, tab2Config(32),
		[]string{"paper: Flink 543 s vs Spark 572 s; Flink's disk is anti-cyclic against CPU (sort-based combiner)"})
}

func runFig4() (*Report, error) {
	return scalingReport("fig4", "Grep weak scaling, 24 GB/node",
		[]int{2, 4, 8, 16, 32},
		func(n int) sim.Job { return sim.GrepJob{TotalBytes: core.ByteSize(n) * 24 * core.GB, Selectivity: 0.1} },
		tab2Config,
		func(n int) string { return fmt.Sprintf("%d nodes", n) },
		map[int]string{32: "paper: Spark up to 20% faster at 16-32 nodes"})
}

func runFig5() (*Report, error) {
	rep := &Report{ID: "fig5", Title: "Grep, 16 nodes, growing datasets"}
	for _, gb := range []int{24, 27, 30, 33} {
		job := sim.GrepJob{TotalBytes: core.ByteSize(16*gb) * core.GB, Selectivity: 0.1}
		row := skippedRow(fmt.Sprintf("%d GB/node", gb), "paper: Spark's advantage preserved")
		for _, engine := range enabled([]sim.EngineKind{sim.Spark, sim.Flink}) {
			p := sim.Params{Spec: cluster.Grid5000(16), Engine: engine, Conf: tab2Config(16)}
			times, err := sim.Trials(job, p, trials)
			if err != nil {
				return nil, err
			}
			s := stats.Summarize(times)
			if engine == sim.Spark {
				row.Spark, row.SparkStd = s.Mean, s.Std
			} else {
				row.Flink, row.FlinkStd = s.Mean, s.Std
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func runFig6() (*Report, error) {
	return usageReport("fig6", "Grep resource usage (32 nodes, 768 GB)",
		32, sim.GrepJob{TotalBytes: 768 * core.GB, Selectivity: 0.1}, tab2Config(32),
		[]string{"paper: Spark 275 s vs Flink 331 s; Flink's filter→count sink underuses resources"})
}

// --- Tera Sort --------------------------------------------------------------

func runFig7() (*Report, error) {
	return scalingReport("fig7", "Tera Sort weak scaling, 32 GB/node",
		[]int{17, 34, 63},
		func(n int) sim.Job { return sim.TeraSortJob{TotalBytes: core.ByteSize(n) * 32 * core.GB} },
		tab3Config,
		func(n int) string { return fmt.Sprintf("%d nodes", n) },
		map[int]string{34: "paper: Flink better on average, higher variance"})
}

func runFig8() (*Report, error) {
	return scalingReport("fig8", "Tera Sort strong scaling, 3.5 TB",
		[]int{55, 73, 97},
		func(n int) sim.Job { return sim.TeraSortJob{TotalBytes: teraBytes} },
		tab3Config,
		func(n int) string { return fmt.Sprintf("%d nodes", n) },
		map[int]string{55: "paper: 5079/4669 s; Flink's edge grows with cluster size"})
}

func runFig9() (*Report, error) {
	return usageReport("fig9", "Tera Sort resource usage (55 nodes, 3.5 TB)",
		55, sim.TeraSortJob{TotalBytes: teraBytes}, tab3Config(55),
		[]string{"paper: Flink pipelines into a single stage; Spark shows two clearly separated stages"})
}

// --- K-Means ----------------------------------------------------------------

func runFig10() (*Report, error) {
	return usageReport("fig10", "K-Means resource usage (24 nodes, 10 iterations)",
		24, sim.KMeansJob{TotalBytes: 51 * core.GB, Iterations: 10}, core.NewConfig(),
		[]string{"paper: Flink 244 s vs Spark 278 s; Spark shows map→collect span pairs per iteration"})
}

func runFig11() (*Report, error) {
	return scalingReport("fig11", "K-Means, same dataset, growing cluster",
		[]int{8, 14, 20, 24},
		func(n int) sim.Job { return sim.KMeansJob{TotalBytes: 51 * core.GB, Iterations: 10} },
		func(n int) *core.Config { return core.NewConfig() },
		func(n int) string { return fmt.Sprintf("%d nodes", n) },
		map[int]string{24: "paper: Flink's bulk iterate >10% faster than loop unrolling"})
}

// --- Graphs -----------------------------------------------------------------

func graphScaling(id, title string, algo sim.GraphAlgo, graph datagen.GraphSpec,
	size core.ByteSize, iters int, nodeCounts []int, confFor func(int) *core.Config,
	paperNotes map[int]string) (*Report, error) {
	return scalingReport(id, title, nodeCounts,
		func(n int) sim.Job {
			return sim.GraphJob{Algo: algo, Graph: graph, SizeBytes: size, Iterations: iters}
		},
		confFor,
		func(n int) string { return fmt.Sprintf("%d nodes", n) },
		paperNotes)
}

func runFig12() (*Report, error) {
	return graphScaling("fig12", "Page Rank, Small Graph (Twitter), 20 iterations",
		sim.PageRank, datagen.SmallGraph, smallBytes, 20,
		[]int{8, 14, 20, 27}, tab5Config,
		map[int]string{27: "paper: 232/192 s; Flink slightly better"})
}

func runFig13() (*Report, error) {
	return graphScaling("fig13", "Page Rank, Medium Graph (Friendster), 20 iterations",
		sim.PageRank, datagen.MediumGraph, mediumBytes, 20,
		[]int{24, 27, 34, 55}, tab6Config,
		map[int]string{27: "paper: Flink ahead; drops if parallelism reduced in load"})
}

func runFig14() (*Report, error) {
	return graphScaling("fig14", "Connected Components, Small Graph, converged",
		sim.ConnComp, datagen.SmallGraph, smallBytes, 20,
		[]int{8, 14, 20, 27}, tab5Config,
		map[int]string{27: "paper: Flink slightly better (delta iterations)"})
}

func runFig15() (*Report, error) {
	return graphScaling("fig15", "Connected Components, Medium Graph, converged",
		sim.ConnComp, datagen.MediumGraph, mediumBytes, 23,
		[]int{27, 34, 55}, tab6Config,
		map[int]string{27: "paper: 388/267 s; Flink up to 30% better"})
}

func runFig16() (*Report, error) {
	return usageReport("fig16", "Page Rank resource usage (27 nodes, Small Graph, 20 iterations)",
		27, sim.GraphJob{Algo: sim.PageRank, Graph: datagen.SmallGraph, SizeBytes: smallBytes, Iterations: 20},
		tab5Config(27),
		[]string{"paper: both CPU+disk-bound in load, CPU+network-bound in iterations; Spark writes ranks to disk each superstep, Flink does not"})
}

func runFig17() (*Report, error) {
	return usageReport("fig17", "Connected Components resource usage (27 nodes, Medium Graph, 23 supersteps)",
		27, sim.GraphJob{Algo: sim.ConnComp, Graph: datagen.MediumGraph, SizeBytes: mediumBytes, Iterations: 23},
		tab6Config(27),
		[]string{"paper: Flink's delta iterate uses CPU more efficiently; memory constant for Flink, growing for Spark"})
}

func runTab7() (*Report, error) {
	rep := &Report{ID: "tab7", Title: "Large Graph (WDC): load + iterations, with failures"}
	rep.Table = append(rep.Table, []string{"nodes", "algo", "spark load", "spark iter", "flink load", "flink iter"})
	for _, n := range []int{27, 44, 97} {
		for _, algo := range []sim.GraphAlgo{sim.PageRank, sim.ConnComp} {
			iters := 5
			if algo == sim.ConnComp {
				iters = 10
			}
			job := sim.GraphJob{Algo: algo, Graph: datagen.LargeGraph, SizeBytes: largeBytes, Iterations: iters}
			cells := []string{fmt.Sprint(n), algo.String()}
			// The table's engine columns are positional: a filtered-out
			// engine must still occupy its two cells.
			for _, engine := range []sim.EngineKind{sim.Spark, sim.Flink} {
				if !engineOn(engine) {
					cells = append(cells, "-", "-")
					continue
				}
				res := job.Run(sim.Params{Spec: cluster.Grid5000(n), Engine: engine, Conf: tab7Config(n)})
				if res.Err != nil {
					cells = append(cells, "no", "no")
				} else {
					cells = append(cells, fmt.Sprintf("%.0fs", res.LoadSeconds), fmt.Sprintf("%.0fs", res.IterSeconds))
				}
			}
			rep.Table = append(rep.Table, cells)
		}
	}
	rep.Notes = append(rep.Notes,
		"paper @97 nodes: Spark PR 418+596 s vs Flink 1096+645 s; Spark CC 357+529 s vs Flink 580+1268 s (Spark ≈1.7x overall)",
		"Flink fails at 27/44 nodes: CoGroup computes the solution set in memory",
		"Spark needs doubled spark.edge.partitions to survive the load stage")
	return rep, nil
}

// --- Tables from the engines/config ----------------------------------------

func runTab1() (*Report, error) {
	spec := cluster.Spec{Nodes: 2, CoresPerNode: 4, MemPerNode: core.GB, DiskSeqMiBps: 100, NetMiBps: 100}
	srt, err := cluster.NewRuntime(spec, 4)
	if err != nil {
		return nil, err
	}
	frt, err := cluster.NewRuntime(spec, 4)
	if err != nil {
		return nil, err
	}
	ctx := spark.NewContext(core.NewConfig(), srt, dfs.New(2, 64*core.KB, 1))
	env := flink.NewEnv(core.NewConfig(), frt, dfs.New(2, 64*core.KB, 1))
	rep := &Report{ID: "tab1", Title: "Operator plans per workload and framework"}
	for _, p := range workloads.Plans(ctx, env) {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("tab1: %s/%s: %w", p.Framework, p.Workload, err)
		}
		ops := ""
		for i, op := range p.Operators() {
			if i > 0 {
				ops += " → "
			}
			ops += op
		}
		rep.Table = append(rep.Table, []string{p.Workload, p.Framework, ops})
	}
	return rep, nil
}

func configTable(id, title string, nodeCounts []int, confFor func(int) *core.Config, keys []string) *Report {
	rep := &Report{ID: id, Title: title}
	header := append([]string{"parameter"}, make([]string, len(nodeCounts))...)
	for i, n := range nodeCounts {
		header[i+1] = fmt.Sprintf("%d nodes", n)
	}
	rep.Table = append(rep.Table, header)
	for _, key := range keys {
		row := []string{key}
		for _, n := range nodeCounts {
			row = append(row, confFor(n).String(key, "-"))
		}
		rep.Table = append(rep.Table, row)
	}
	return rep
}

func runTab2() (*Report, error) {
	return configTable("tab2", "Word Count / Grep settings (24 GB/node)",
		[]int{2, 4, 8, 16, 32}, tab2Config,
		[]string{core.SparkDefaultParallelism, core.FlinkDefaultParallelism,
			core.SparkExecutorMemory, core.FlinkTaskManagerMemory,
			core.HDFSBlockSize, core.FlinkNetworkBuffers, core.BufferSize}), nil
}

func runTab3() (*Report, error) {
	return configTable("tab3", "Tera Sort settings",
		[]int{17, 34, 63, 55, 73, 97}, tab3Config,
		[]string{core.SparkDefaultParallelism, core.FlinkDefaultParallelism,
			core.SparkExecutorMemory, core.FlinkTaskManagerMemory,
			core.HDFSBlockSize, core.FlinkNetworkBuffers, core.BufferSize}), nil
}

func runTab4() (*Report, error) {
	rep := &Report{ID: "tab4", Title: "Graph dataset characteristics (Table IV)"}
	rep.Table = append(rep.Table, []string{"graph", "vertices", "edges", "size"})
	for _, g := range []struct {
		spec datagen.GraphSpec
		size core.ByteSize
	}{
		{datagen.SmallGraph, smallBytes},
		{datagen.MediumGraph, mediumBytes},
		{datagen.LargeGraph, largeBytes},
	} {
		rep.Table = append(rep.Table, []string{
			g.spec.Name,
			fmt.Sprintf("%.1fM", float64(g.spec.Vertices)/1e6),
			fmt.Sprintf("%.1fB", float64(g.spec.Edges)/1e9),
			g.size.String(),
		})
	}
	rep.Notes = append(rep.Notes, "generators: datagen.RMAT reproduces the vertex/edge counts and power-law degrees at any scale factor")
	return rep, nil
}

func runTab5() (*Report, error) {
	return configTable("tab5", "Small Graph settings (formulas over nodes×cores)",
		[]int{8, 14, 20, 27}, tab5Config,
		[]string{core.SparkDefaultParallelism, core.FlinkDefaultParallelism,
			core.SparkEdgePartitions, core.FlinkNetworkBuffers}), nil
}

func runTab6() (*Report, error) {
	return configTable("tab6", "Medium Graph settings",
		[]int{24, 27, 34, 55}, tab6Config,
		[]string{core.SparkDefaultParallelism, core.FlinkDefaultParallelism,
			core.SparkExecutorMemory, core.FlinkTaskManagerMemory,
			core.SparkEdgePartitions}), nil
}

// Ratio reports flink/spark for a row (helper for tests and docs).
func (r Row) Ratio() float64 {
	if math.IsNaN(r.Spark) || math.IsNaN(r.Flink) || r.Spark == 0 {
		return math.NaN()
	}
	return r.Flink / r.Spark
}

package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// The engine filter lets one engine's numbers be regenerated without
// running the full matrix (benchrunner's -engines flag, backed by the
// dataflow backend registry). A nil filter runs everything; filtered-out
// engines render as "-" cells.

var engineFilter map[sim.EngineKind]bool

// SetEngineFilter restricts every experiment to the named engines
// ("spark", "flink", "mapreduce"). An empty list clears the filter.
// Names are matched against the SIMULATED engine set, which mirrors the
// dataflow backend registry one-to-one today; a new real backend also
// needs a sim.EngineKind before the experiment harness can replay it.
func SetEngineFilter(names []string) error {
	if len(names) == 0 {
		engineFilter = nil
		return nil
	}
	m := map[sim.EngineKind]bool{}
	for _, name := range names {
		found := false
		for _, e := range sim.Engines() {
			if e.String() == name {
				m[e] = true
				found = true
			}
		}
		if !found {
			known := make([]string, 0, len(sim.Engines()))
			for _, e := range sim.Engines() {
				known = append(known, e.String())
			}
			sort.Strings(known)
			return fmt.Errorf("experiments: unknown engine %q (known: %v)", name, known)
		}
	}
	engineFilter = m
	return nil
}

// engineOn reports whether the filter admits the engine.
func engineOn(e sim.EngineKind) bool {
	return engineFilter == nil || engineFilter[e]
}

// enabled filters an engine list, keeping report-column order.
func enabled(all []sim.EngineKind) []sim.EngineKind {
	out := make([]sim.EngineKind, 0, len(all))
	for _, e := range all {
		if engineOn(e) {
			out = append(out, e)
		}
	}
	return out
}

// skippedRow pre-marks every engine cell as skipped; the runners overwrite
// the cells of the engines they actually execute.
func skippedRow(label, note string) Row {
	return Row{
		Label: label, PaperNote: note,
		Spark: math.NaN(), Flink: math.NaN(), MapRed: math.NaN(),
		SparkP99: math.NaN(), FlinkP99: math.NaN(), MapRedP99: math.NaN(),
		SparkUtil: math.NaN(), FlinkUtil: math.NaN(), MapRedUtil: math.NaN(),
		SparkQD99: math.NaN(), FlinkQD99: math.NaN(), MapRedQD99: math.NaN(),
		SparkNsRec: math.NaN(), FlinkNsRec: math.NaN(), MapRedNsRec: math.NaN(),
		SparkAllocsRec: math.NaN(), FlinkAllocsRec: math.NaN(), MapRedAllocsRec: math.NaN(),
	}
}

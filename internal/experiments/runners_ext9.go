package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/engine/mapreduce"
	"repro/internal/memory"
	"repro/internal/serde"
	"repro/internal/shuffle"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ext9 is the raw-speed family: WordCount and TeraSort per engine measured
// in nanoseconds and heap allocations PER INPUT RECORD, against an in-process
// emulation of the pre-redesign hot path. The "legacy alloc" rows switch the
// raw-speed layer off wholesale — operator fusion disabled, the buffer pool
// bypassed, local block reads deep-copied, and one fresh heap object per
// encoded record (the old allocate-per-record Codec surface) — which is the
// allocation behaviour every record paid before the tungsten-style rework.
// The gap between the row pairs is the Sec. IV-D serialization axis measured
// directly: same workload, same engine, only the memory discipline differs.

func init() {
	register("ext9", "Raw speed — ns/record and allocs/record, WordCount & TeraSort on the real engines", runExt9)
}

const (
	ext9Trials      = 3
	ext9TextBytes   = 192 * 1024
	ext9TeraRecords = 4000
	ext9Parallelism = 4
)

// RawSpeed is one measured (engine, workload, mode) cell: best-of-trials
// wall-clock nanoseconds and heap allocations per input record.
type RawSpeed struct {
	NsPerRec     float64
	AllocsPerRec float64
	Records      int64
}

func runExt9() (*Report, error) {
	rep := &Report{
		ID:        "ext9",
		Title:     "Raw speed: ns/record and allocs/record per engine (WordCount + TeraSort)",
		ThreeWay:  true,
		PerRecord: true,
		Notes: []string{
			"cells: best-of-" + fmt.Sprint(ext9Trials) + " wall-clock ns and heap allocations per input record (lines for WordCount, 100-byte records for TeraSort, rows on the hot-path rows)",
			"legacy alloc = pre-redesign hot path emulated in-process: fusion off, buffer pool bypassed, local block reads copied, one allocation per encoded record",
			"end-to-end rows run the full workload (workload-inherent allocations included); hot path rows isolate the redesigned per-record cycle — tungsten rows append-encoded through the real shuffle writer, sealed pooled blocks, zero-copy local borrow, borrowing positional decode — under each engine's default strategy",
			"the optimized/legacy gap on allocs/record is the acceptance delta for the tungsten-style serde + zero-copy shuffle + fusion layer",
		},
	}
	for _, wl := range []string{"WordCount", "TeraSort"} {
		for _, meas := range []struct {
			label string
			run   func(engine, wl string, legacy bool) (RawSpeed, error)
		}{
			{wl, MeasureRawSpeed},
			{wl + " hot path", MeasureHotPath},
		} {
			for _, mode := range []struct {
				suffix string
				legacy bool
			}{{" (legacy alloc)", true}, {"", false}} {
				row := skippedRow(meas.label+mode.suffix, "")
				for _, engine := range enabled(sim.Engines()) {
					rs, err := meas.run(engine.String(), wl, mode.legacy)
					if err != nil {
						return nil, fmt.Errorf("ext9 %s %s: %w", meas.label, engine, err)
					}
					switch engine {
					case sim.Spark:
						row.SparkNsRec, row.SparkAllocsRec = rs.NsPerRec, rs.AllocsPerRec
					case sim.Flink:
						row.FlinkNsRec, row.FlinkAllocsRec = rs.NsPerRec, rs.AllocsPerRec
					case sim.MapReduce:
						row.MapRedNsRec, row.MapRedAllocsRec = rs.NsPerRec, rs.AllocsPerRec
					}
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

// MeasureRawSpeed runs one workload on one engine and returns per-record
// nanoseconds and allocations (best of ext9Trials measured runs, after one
// warm-up that primes the buffer pool). legacy measures the pre-redesign
// baseline emulation instead; the switches are process-global, so callers
// must not measure concurrently.
func MeasureRawSpeed(engine, wl string, legacy bool) (RawSpeed, error) {
	if legacy {
		prevFuse := dataflow.SetFusion(false)
		prevZC := shuffle.SetZeroCopyLocal(false)
		prevLA := serde.SetLegacyAlloc(true)
		prevPool := memory.DefaultPool.SetEnabled(false)
		defer func() {
			dataflow.SetFusion(prevFuse)
			shuffle.SetZeroCopyLocal(prevZC)
			serde.SetLegacyAlloc(prevLA)
			memory.DefaultPool.SetEnabled(prevPool)
		}()
	}
	text := datagen.Text(33, ext9TextBytes, 10)
	tera := datagen.TeraGen(7, ext9TeraRecords)
	records := int64(ext9TeraRecords)
	if wl == "WordCount" {
		records = int64(bytes.Count(text, []byte("\n")))
	}
	if records == 0 {
		return RawSpeed{}, fmt.Errorf("ext9: empty %s input", wl)
	}
	best := RawSpeed{Records: records}
	for trial := 0; trial <= ext9Trials; trial++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := ext9Run(engine, wl, text, tera); err != nil {
			return RawSpeed{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if trial == 0 {
			continue // warm-up: pool and lazily-built state fill here
		}
		ns := float64(elapsed.Nanoseconds()) / float64(records)
		allocs := float64(after.Mallocs-before.Mallocs) / float64(records)
		if best.NsPerRec == 0 || ns < best.NsPerRec {
			best.NsPerRec = ns
		}
		if best.AllocsPerRec == 0 || allocs < best.AllocsPerRec {
			best.AllocsPerRec = allocs
		}
	}
	return best, nil
}

// MeasureHotPath measures the redesigned per-record cycle in isolation:
// the workload's record shape as tungsten-style rows pushed through the
// real shuffle machinery — append-encode into pooled buffers, sealed
// blocks, a zero-copy local borrow, and a borrowing positional decode —
// under the engine's default strategy (sort for spark and mapreduce, the
// pipelined hash exchange for flink). End-to-end workload runs bury this
// path under workload-inherent allocations (word strings, reducer maps);
// this is the axis the serde/shuffle redesign actually moves. Same
// best-of-trials and legacy semantics as MeasureRawSpeed.
func MeasureHotPath(engine, wl string, legacy bool) (RawSpeed, error) {
	if legacy {
		prevFuse := dataflow.SetFusion(false)
		prevZC := shuffle.SetZeroCopyLocal(false)
		prevLA := serde.SetLegacyAlloc(true)
		prevPool := memory.DefaultPool.SetEnabled(false)
		defer func() {
			dataflow.SetFusion(prevFuse)
			shuffle.SetZeroCopyLocal(prevZC)
			serde.SetLegacyAlloc(prevLA)
			memory.DefaultPool.SetEnabled(prevPool)
		}()
	}
	set := shuffle.Settings{Kind: shuffle.Sort}
	if engine == "flink" {
		set = shuffle.Settings{Kind: shuffle.Hash, FlushBytes: 32 * 1024}
	}
	schema, rows, err := hotPathRows(wl)
	if err != nil {
		return RawSpeed{}, err
	}
	spec := shuffle.Spec[serde.Row]{
		NumParts: ext9Parallelism,
		Codec:    schema.Codec(),
		Route: func(r serde.Row) int {
			b, _ := r.Bytes(0)
			return int(fnvHash(b) % uint64(ext9Parallelism))
		},
	}
	consume := func(r serde.Row) { r.Int64(1) }
	if wl == "TeraSort" {
		// The TeraSort reduce path: rows order by their 10-byte key via the
		// raw-tail normalized form, compared with memcmp and never decoded.
		spec.Less = func(a, b serde.Row) bool {
			ab, _ := a.Bytes(0)
			bb, _ := b.Bytes(0)
			return bytes.Compare(ab, bb) < 0
		}
		spec.NormKey = func(v serde.Row, dst []byte) []byte {
			b, _ := v.Bytes(0)
			return serde.AppendKeyTailBytes(dst, b)
		}
		consume = func(r serde.Row) { _, _ = r.Bytes(0) }
	}
	records := int64(len(rows))
	best := RawSpeed{Records: records}
	for trial := 0; trial <= ext9Trials; trial++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := hotPathCycle(spec, set, rows, consume); err != nil {
			return RawSpeed{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if trial == 0 {
			continue
		}
		ns := float64(elapsed.Nanoseconds()) / float64(records)
		allocs := float64(after.Mallocs-before.Mallocs) / float64(records)
		if best.NsPerRec == 0 || ns < best.NsPerRec {
			best.NsPerRec = ns
		}
		if best.AllocsPerRec == 0 || allocs < best.AllocsPerRec {
			best.AllocsPerRec = allocs
		}
	}
	return best, nil
}

// hotPathCycle runs one full write → seal → borrow → decode → consume
// cycle over the shared shuffle core, releasing every block back to the
// pool so the next cycle runs at steady state.
func hotPathCycle(spec shuffle.Spec[serde.Row], set shuffle.Settings, rows []serde.Row, consume func(serde.Row)) error {
	blocks := make(map[int][]shuffle.Block, spec.NumParts)
	w := shuffle.NewWriter(spec, shuffle.Env{Settings: set, Emit: func(p int, b shuffle.Block) error {
		if b.Len() == 0 {
			b.Release()
			return nil
		}
		blocks[p] = append(blocks[p], b)
		return nil
	}})
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	var n int64
	for p := 0; p < spec.NumParts; p++ {
		for _, b := range blocks[p] {
			view := b.Borrow() // the zero-copy local-read path
			segs, err := shuffle.DecodeBlocks(set, spec.Codec, []shuffle.Block{view})
			if err != nil {
				return err
			}
			for _, seg := range segs {
				for _, r := range seg {
					consume(r)
					n++
				}
			}
			view.Release()
			b.Release() // owner side: recycle the storage for the next cycle
		}
	}
	if n != int64(len(rows)) {
		return fmt.Errorf("ext9: hot path saw %d of %d records", n, len(rows))
	}
	return nil
}

// hotPathRows builds the workload's input as tungsten rows over one wire
// buffer: (word, 1) pair rows for WordCount, (10-byte key, 90-byte payload)
// rows for TeraSort. The returned rows borrow the buffer.
func hotPathRows(wl string) (*serde.Schema, []serde.Row, error) {
	var schema *serde.Schema
	var wire []byte
	switch wl {
	case "WordCount":
		schema = serde.NewSchema(serde.KindString, serde.KindInt64)
		b := schema.NewBuilder()
		for _, word := range strings.Fields(string(datagen.Text(33, ext9TextBytes, 10))) {
			b.Reset()
			b.SetString(0, word)
			b.SetInt64(1, 1)
			wire = b.AppendRow(wire)
		}
		b.Release()
	case "TeraSort":
		schema = serde.NewSchema(serde.KindBytes, serde.KindBytes)
		tera := datagen.TeraGen(7, ext9TeraRecords)
		b := schema.NewBuilder()
		for off := 0; off+100 <= len(tera); off += 100 {
			b.Reset()
			b.SetBytes(0, tera[off:off+10])
			b.SetBytes(1, tera[off+10:off+100])
			wire = b.AppendRow(wire)
		}
		b.Release()
	default:
		return nil, nil, fmt.Errorf("unknown workload %q", wl)
	}
	var rows []serde.Row
	for src := wire; len(src) > 0; {
		r, n, err := schema.ReadRow(src)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, r)
		src = src[n:]
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("ext9: empty %s hot-path input", wl)
	}
	return schema, rows, nil
}

// fnvHash is FNV-1a over a row's key bytes — the route hash of the
// hot-path cycle.
func fnvHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// ext9Run executes one workload once over a fresh session, mirroring the
// ext6 testbed but with the engines' default shuffle strategies.
func ext9Run(engine, wl string, text, tera []byte) error {
	spec := cluster.Spec{Nodes: 2, CoresPerNode: 8, MemPerNode: core.GB, DiskSeqMiBps: 200, NetMiBps: 200}
	rt, err := cluster.NewRuntime(spec, 8)
	if err != nil {
		return err
	}
	conf := core.NewConfig().
		SetInt(core.SparkDefaultParallelism, ext9Parallelism).
		SetInt(core.FlinkDefaultParallelism, ext9Parallelism).
		SetInt(mapreduce.MRReduceTasks, ext9Parallelism).
		SetInt(core.FlinkNetworkBuffers, 8192).
		SetBytes(core.SparkExecutorMemory, 512*core.MB).
		SetBytes(core.FlinkTaskManagerMemory, 256*core.MB)
	s, err := dataflow.Open(engine, dataflow.WithConfig(conf), dataflow.WithRuntime(rt), dataflow.WithFS(dfs.New(spec.Nodes, 16*core.KB, 1)))
	if err != nil {
		return err
	}
	switch wl {
	case "WordCount":
		s.FS().WriteFile("ext9-wc", text)
		return workloads.WordCount(s, "ext9-wc", "ext9-wc-out")
	case "TeraSort":
		s.FS().WriteFile("ext9-tera", tera)
		part := workloads.TeraPartitioner(tera, ext9Parallelism)
		if err := workloads.TeraSort(s, "ext9-tera", "ext9-tera-out", part); err != nil {
			return err
		}
		return workloads.VerifyTeraSorted(s.FS(), "ext9-tera-out", ext9TeraRecords)
	}
	return fmt.Errorf("unknown workload %q", wl)
}

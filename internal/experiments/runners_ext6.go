package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	_ "repro/internal/dataflow/backend/flinkexec" // register the real backends for the sweep
	_ "repro/internal/dataflow/backend/mrexec"
	_ "repro/internal/dataflow/backend/sparkexec"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/engine/mapreduce"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// ext6 is the fourth experiment family: the paper's Section V sensitivity
// analysis (shuffle tuning × task parallelism) replayed on the REAL
// mini-engines through the shared internal/shuffle core. Every cell is a
// measured wall-clock mean ± std at laptop scale — the same workload
// definition, the same strategy implementation, three physical engines.

func init() {
	register("ext6", "Shuffle strategy × parallelism — Word Count & Tera Sort on the real engines", runExt6)
}

const (
	ext6Trials      = 3
	ext6TextBytes   = 192 * 1024
	ext6TeraRecords = 4000
)

// ext6Parallelisms are the reduce-side task counts swept per strategy; the
// low point under-subscribes the 16-slot testbed, the high point matches
// the slot budget (the paper's "at most as many tasks as slots" rule for
// pipelined plans).
var ext6Parallelisms = []int{2, 8}

func runExt6() (*Report, error) {
	rep := &Report{
		ID:       "ext6",
		Title:    "Shuffle strategy × parallelism, real engines (WordCount + TeraSort)",
		ThreeWay: true,
		Notes: []string{
			"cells: measured wall-clock seconds at laptop scale (2 nodes × 8 slots), mean ± std over " + fmt.Sprint(ext6Trials) + " runs",
			"hash = bucketed pipelined repartition; sort = spill-and-merge with map-side combine (internal/shuffle)",
			"lit (Sec. V): shuffle implementation and task parallelism are the knobs behind most of the spark-flink gap",
		},
	}
	text := datagen.Text(33, ext6TextBytes, 10)
	tera := datagen.TeraGen(7, ext6TeraRecords)
	for _, wl := range []string{"WordCount", "TeraSort"} {
		for _, strat := range []string{"hash", "sort"} {
			for _, par := range ext6Parallelisms {
				row := skippedRow(fmt.Sprintf("%s %s p=%d", wl, strat, par), "")
				for _, engine := range enabled(sim.Engines()) {
					times := make([]float64, 0, ext6Trials)
					for i := 0; i < ext6Trials; i++ {
						sec, err := ext6Run(engine.String(), wl, strat, par, text, tera)
						if err != nil {
							return nil, fmt.Errorf("ext6 %s %s %s p=%d: %w", engine, wl, strat, par, err)
						}
						times = append(times, sec)
					}
					s := stats.Summarize(times)
					switch engine {
					case sim.Spark:
						row.Spark, row.SparkStd = s.Mean, s.Std
					case sim.Flink:
						row.Flink, row.FlinkStd = s.Mean, s.Std
					case sim.MapReduce:
						row.MapRed, row.MapRedStd = s.Mean, s.Std
					}
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

// ext6Run executes one workload once on one engine with the given shuffle
// strategy and parallelism, over a fresh session, and returns the measured
// seconds.
func ext6Run(engine, wl, strat string, par int, text, tera []byte) (float64, error) {
	spec := cluster.Spec{Nodes: 2, CoresPerNode: 8, MemPerNode: core.GB, DiskSeqMiBps: 200, NetMiBps: 200}
	rt, err := cluster.NewRuntime(spec, 8)
	if err != nil {
		return 0, err
	}
	conf := core.NewConfig().
		Set(core.ShuffleStrategy, strat).
		SetInt(core.SparkDefaultParallelism, par).
		SetInt(core.FlinkDefaultParallelism, par).
		SetInt(mapreduce.MRReduceTasks, par).
		SetInt(core.FlinkNetworkBuffers, 8192).
		SetBytes(core.SparkExecutorMemory, 512*core.MB).
		SetBytes(core.FlinkTaskManagerMemory, 256*core.MB)
	s, err := dataflow.Open(engine, dataflow.WithConfig(conf), dataflow.WithRuntime(rt), dataflow.WithFS(dfs.New(spec.Nodes, 16*core.KB, 1)))
	if err != nil {
		return 0, err
	}
	switch wl {
	case "WordCount":
		s.FS().WriteFile("ext6-wc", text)
		start := time.Now()
		if err := workloads.WordCount(s, "ext6-wc", "ext6-wc-out"); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	case "TeraSort":
		s.FS().WriteFile("ext6-tera", tera)
		part := workloads.TeraPartitioner(tera, par)
		start := time.Now()
		if err := workloads.TeraSort(s, "ext6-tera", "ext6-tera-out", part); err != nil {
			return 0, err
		}
		if err := workloads.VerifyTeraSorted(s.FS(), "ext6-tera-out", ext6TeraRecords); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	return 0, fmt.Errorf("unknown workload %q", wl)
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/des"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ext8 is the multi-tenant contention family: the same small analytic job
// (revenue per region over an in-memory transaction log) submitted by a
// Zipf-skewed tenant mix through the internal/sched scheduler, measured as
// a policy × offered-load matrix on all three real engines. The heavy
// tenant's jobs gang-reserve the whole cluster while the light tenants'
// jobs are narrow, so the sharing policy — not the engine — decides the
// tail: FIFO's head-of-line blocking parks light jobs behind every heavy
// burst, fair share interleaves them, and per-tenant slot caps wall the
// heavy tenant off entirely. Cells are JCT p50/p99 milliseconds with
// cluster utilization and p99 queue delay beneath.

func init() {
	register("ext8", "Multi-tenant contention — JCT p50/p99 + utilization, sharing policy × offered load", runExt8)
}

// ext8LoadFor is the open-loop submission window of one cell. Long enough
// for dozens of jobs and several heavy-tenant gangs, short enough that the
// 18-cell matrix stays test-suite friendly.
const ext8LoadFor = 250 * time.Millisecond

// ext8Stats is one cell's outcome: JCT and queue-delay percentiles in
// milliseconds plus cluster utilization over the run's makespan.
type ext8Stats struct {
	p50, p99, qd99, util float64
}

func runExt8() (*Report, error) {
	rep := &Report{
		ID:       "ext8",
		Title:    "Multi-tenant contention: JCT and utilization under sharing policies (RegionRevenue)",
		Latency:  true,
		ThreeWay: true,
		Notes: []string{
			"cells: per-job JCT (submit→complete), p50 / p99 ms over one open-loop run of " + fmt.Sprint(ext8LoadFor),
			"sub-row: cluster utilization (granted slot-time / capacity over the makespan) and p99 queue delay ms",
			"load: Poisson job arrivals, 4 tenants Zipf(1.1) — tenant-0 submits full-cluster gangs, the rest half-cluster jobs",
			"fifo = strict order with head-of-line blocking; fair = weighted deficit round-robin; caps = heavy tenant capped at half the cluster",
			"every job runs dataflow RegionRevenue on a carved slot grant (dataflow.WithScheduler)",
		},
	}
	policies := []struct {
		key string
		mk  func() sched.SharingPolicy
	}{
		{"fifo", func() sched.SharingPolicy { return sched.FIFO{} }},
		{"fair", func() sched.SharingPolicy { return sched.NewFairShare(nil) }},
		{"caps", func() sched.SharingPolicy { return sched.SlotCaps{Caps: map[string]int{"tenant-0": 4}} }},
	}
	loads := []struct {
		label string
		rate  float64 // jobs/s offered
	}{
		{"0.2k jobs/s", 200},
		{"0.8k jobs/s", 800},
	}
	for _, p := range policies {
		for _, l := range loads {
			row := skippedRow(p.key+" @ "+l.label, "")
			for _, engine := range enabled(sim.Engines()) {
				st, err := ext8Run(engine.String(), p.mk(), l.rate)
				if err != nil {
					return nil, fmt.Errorf("ext8 %s %s %s: %w", p.key, l.label, engine, err)
				}
				switch engine {
				case sim.Spark:
					row.Spark, row.SparkP99, row.SparkUtil, row.SparkQD99 = st.p50, st.p99, st.util, st.qd99
				case sim.Flink:
					row.Flink, row.FlinkP99, row.FlinkUtil, row.FlinkQD99 = st.p50, st.p99, st.util, st.qd99
				case sim.MapReduce:
					row.MapRed, row.MapRedP99, row.MapRedUtil, row.MapRedQD99 = st.p50, st.p99, st.util, st.qd99
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// ext8Run measures one (engine, policy, offered load) cell: an open-loop
// Poisson submitter drives tenant-mixed RegionRevenue jobs through the
// scheduler for ext8LoadFor, then the queue drains and the scheduler's
// sketches are read out. Submission is open-loop in the queueing sense —
// arrival times come from the process alone, never from how fast the
// cluster drains, which is exactly what lets overload build real queues.
func ext8Run(engine string, policy sched.SharingPolicy, rate float64) (ext8Stats, error) {
	spec := cluster.Spec{Nodes: 2, CoresPerNode: 4, MemPerNode: core.GB, DiskSeqMiBps: 200, NetMiBps: 200}
	rt, err := cluster.NewRuntime(spec, 4)
	if err != nil {
		return ext8Stats{}, err
	}
	s := sched.New(rt, policy, sched.Config{MaxQueuedPerTenant: 512})
	txns := workloads.GenTxns(23, 2000, 64, 1.0)
	mix := workloads.NewTenantMix(31, 4, 1.1)
	proc := des.NewPoisson(37, rate)

	errs := make(chan error, 1)
	runJob := func(g *sched.Grant) error {
		conf := core.NewConfig().
			SetInt(core.SparkDefaultParallelism, 2).
			SetInt(core.FlinkDefaultParallelism, 2)
		sess, err := dataflow.Open(engine, dataflow.WithConfig(conf), dataflow.WithScheduler(g))
		if err != nil {
			return err
		}
		got, err := workloads.RegionRevenue(sess, txns, 2)
		if err == nil && len(got) == 0 {
			err = fmt.Errorf("empty revenue result")
		}
		if err != nil {
			select {
			case errs <- err:
			default:
			}
		}
		return err
	}

	base := time.Now()
	deadline := base.Add(ext8LoadFor)
	next := base
	for next = next.Add(time.Duration(proc.Next() * float64(time.Second))); !next.After(deadline); next = next.Add(time.Duration(proc.Next() * float64(time.Second))) {
		// Sleep to the scheduled arrival; a submitter that fell behind
		// catches up without sleeping (open loop, no backoff).
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		tenant := mix.Next()
		// Light tenants take half the cluster (2 slots/node — the floor a
		// parallelism-2 pipelined flink gang needs), the heavy tenant all
		// of it.
		slots := rt.Spec().Nodes * rt.SlotsPerNode() / 2
		if tenant == "tenant-0" {
			slots = rt.Spec().Nodes * rt.SlotsPerNode()
		}
		if _, err := s.Submit(sched.Job{Tenant: tenant, Slots: slots, Run: runJob}); err != nil {
			return ext8Stats{}, fmt.Errorf("submit: %w", err)
		}
	}
	s.Close()
	s.Drain()
	select {
	case err := <-errs:
		return ext8Stats{}, err
	default:
	}
	st := s.Stats()
	if st.Launched == 0 {
		return ext8Stats{}, fmt.Errorf("no jobs launched")
	}
	return ext8Stats{p50: st.JCT.P50, p99: st.JCT.P99, qd99: st.QueueDelay.P99, util: st.Utilization}, nil
}

package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Row is one x-axis group of a comparison chart: mean ± std seconds per
// framework. NaN marks a failed run (the paper's "no" cells in Table VII).
// The MapRed columns are only rendered for three-way reports (the ext*
// experiments comparing against the MapReduce baseline).
type Row struct {
	Label     string
	Spark     float64
	SparkStd  float64
	Flink     float64
	FlinkStd  float64
	MapRed    float64
	MapRedStd float64
	// SparkP99/FlinkP99/MapRedP99 are only set by latency reports
	// (Report.Latency), where the Spark/Flink/MapRed columns hold p50
	// milliseconds instead of mean seconds and these hold the matching
	// tail percentile. MapRedP99 only renders for three-way latency
	// reports (ext8, where all three real engines run under contention).
	SparkP99  float64
	FlinkP99  float64
	MapRedP99 float64
	// Utilization and queue-delay columns of the multi-tenant contention
	// reports (ext8): granted-slot-time over cluster capacity across the
	// run's makespan, and the p99 submission→first-grant delay in
	// milliseconds. NaN everywhere else.
	SparkUtil  float64
	FlinkUtil  float64
	MapRedUtil float64
	SparkQD99  float64
	FlinkQD99  float64
	MapRedQD99 float64
	// Raw-speed columns of the per-record reports (ext9): wall-clock
	// nanoseconds and heap allocations per input record. NaN everywhere
	// else.
	SparkNsRec      float64
	FlinkNsRec      float64
	MapRedNsRec     float64
	SparkAllocsRec  float64
	FlinkAllocsRec  float64
	MapRedAllocsRec float64
	// Planner columns of the adaptive-execution report (ext10): measured
	// seconds of the planner's chosen configuration, the oracle sweep's
	// best and worst fixed configurations, the regret ratio and the re-plan
	// count. NaN everywhere else (Replans is NaN on static cells too).
	PlannerSec float64
	OracleSec  float64
	WorstSec   float64
	Regret     float64
	Replans    float64
	PaperNote  string // the paper's reported values or claim, for the report
}

// Report is the regenerated artifact for one experiment id.
type Report struct {
	ID       string
	Title    string
	Rows     []Row
	Figures  []string // rendered resource-usage correlation figures
	Notes    []string
	Table    [][]string // free-form table (operator/config tables)
	ThreeWay bool       // render the mapreduce column next to spark/flink
	// Latency marks a streaming report: row cells are p50/p99 latency
	// milliseconds (Spark/Flink + SparkP99/FlinkP99), not mean ± std
	// seconds.
	Latency bool
	// PerRecord marks a raw-speed report (ext9): row cells are ns/record
	// and allocs/record (the *NsRec/*AllocsRec columns), not runtimes.
	PerRecord bool
	// Planner marks the adaptive-execution report (ext10): rows carry the
	// Planner*/Oracle*/Regret columns for the JSON artifact only — the
	// human rendering is the free-form Table, so Render skips the rows.
	Planner bool
}

// Render produces the report as text: a paper-style comparison table plus
// any correlation figures.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Table) > 0 {
		widths := make([]int, 0)
		for _, row := range r.Table {
			for i, cell := range row {
				if i >= len(widths) {
					widths = append(widths, 0)
				}
				if len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		for _, row := range r.Table {
			for i, cell := range row {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			}
			b.WriteString("\n")
		}
	}
	if len(r.Rows) > 0 && !r.Planner {
		noteHeader := "paper"
		if r.ThreeWay {
			noteHeader = "notes"
		}
		printRow := func(label, spark, flink, mapred, note string) {
			fmt.Fprintf(&b, "%-16s %-18s %-18s ", label, spark, flink)
			if r.ThreeWay {
				fmt.Fprintf(&b, "%-18s ", mapred)
			}
			fmt.Fprintf(&b, "%s\n", note)
		}
		if r.PerRecord {
			printRow("config", "spark ns/rec·allocs", "flink ns/rec·allocs", "mapreduce ns/rec·allocs", noteHeader)
			for _, row := range r.Rows {
				printRow(row.Label, rawCell(row.SparkNsRec, row.SparkAllocsRec),
					rawCell(row.FlinkNsRec, row.FlinkAllocsRec),
					rawCell(row.MapRedNsRec, row.MapRedAllocsRec), row.PaperNote)
			}
		} else if r.Latency {
			printRow("config", "spark p50/p99 ms", "flink p50/p99 ms", "mapreduce p50/p99 ms", noteHeader)
			for _, row := range r.Rows {
				printRow(row.Label, latCell(row.Spark, row.SparkP99), latCell(row.Flink, row.FlinkP99),
					latCell(row.MapRed, row.MapRedP99), row.PaperNote)
				// The contention reports carry per-engine utilization and
				// queue-delay tails alongside the JCT percentiles.
				if !math.IsNaN(row.SparkUtil) || !math.IsNaN(row.FlinkUtil) || !math.IsNaN(row.MapRedUtil) {
					printRow("", utilCell(row.SparkUtil, row.SparkQD99), utilCell(row.FlinkUtil, row.FlinkQD99),
						utilCell(row.MapRedUtil, row.MapRedQD99), "")
				}
			}
		} else {
			printRow("config", "spark (s)", "flink (s)", "mapreduce (s)", noteHeader)
			for _, row := range r.Rows {
				printRow(row.Label, cell(row.Spark, row.SparkStd), cell(row.Flink, row.FlinkStd),
					cell(row.MapRed, row.MapRedStd), row.PaperNote)
			}
		}
	}
	for _, fig := range r.Figures {
		b.WriteString("\n")
		b.WriteString(fig)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func cell(mean, std float64) string {
	if math.IsNaN(mean) {
		// Either the run failed (the paper's "no" cells) or the engine was
		// excluded by the -engines filter.
		return "-"
	}
	// Paper-scale times are hundreds of seconds and render as integers;
	// the real-engine sweeps (ext6) measure milliseconds and need the
	// extra digits.
	prec := 0
	if mean < 10 {
		prec = 3
	}
	if std > 0 {
		return fmt.Sprintf("%.*f ± %.*f", prec, mean, prec, std)
	}
	return fmt.Sprintf("%.*f", prec, mean)
}

// latCell renders one latency cell: "p50 / p99" in milliseconds, "-" when
// the engine was filtered out or the run failed.
func latCell(p50, p99 float64) string {
	if math.IsNaN(p50) {
		return "-"
	}
	return fmt.Sprintf("%.1f / %.1f", p50, p99)
}

// rawCell renders one raw-speed cell: "ns/record · allocs/record", "-"
// when the engine was filtered out or the run failed.
func rawCell(ns, allocs float64) string {
	if math.IsNaN(ns) {
		return "-"
	}
	return fmt.Sprintf("%.0f ns · %.2f al", ns, allocs)
}

// utilCell renders the contention sub-row cell: cluster utilization and
// p99 queue delay of one engine's run.
func utilCell(util, qd99 float64) string {
	if math.IsNaN(util) {
		return ""
	}
	return fmt.Sprintf("util %.2f qd99 %.1f", util, qd99)
}

// Runner produces one experiment's report.
type Runner struct {
	ID    string
	Title string
	Run   func() (*Report, error)
}

var registry []Runner

func register(id, title string, run func() (*Report, error)) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// IDs returns the experiment ids in paper order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.ID
	}
	return out
}

// Get returns the runner for an id.
func Get(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// sortedCopy returns ids sorted (for deterministic listings).
func sortedCopy(ids []string) []string {
	out := append([]string{}, ids...)
	sort.Strings(out)
	return out
}

package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"tab1", "tab2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"tab3", "fig7", "fig8", "fig9", "fig10", "fig11",
		"tab4", "tab5", "tab6", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "tab7",
		"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "ext9", "ext10", "ext11",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get of unknown id should fail")
	}
	if got := sortedCopy(ids); got[0] > got[len(got)-1] {
		t.Error("sortedCopy not sorted")
	}
}

// TestRegistryResolvesAndStable: every registered id resolves via Get with
// matching metadata, and IDs() renders the same order on every call.
func TestRegistryResolvesAndStable(t *testing.T) {
	first := IDs()
	for _, id := range first {
		r, ok := Get(id)
		if !ok {
			t.Fatalf("registered id %s does not resolve via Get", id)
		}
		if r.ID != id {
			t.Errorf("Get(%q).ID = %q", id, r.ID)
		}
		if r.Title == "" || r.Run == nil {
			t.Errorf("%s: incomplete runner (title %q)", id, r.Title)
		}
	}
	second := IDs()
	if len(first) != len(second) {
		t.Fatalf("IDs() length unstable: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("IDs() order unstable at %d: %s vs %s", i, first[i], second[i])
		}
	}
}

// TestExtThreeWayFinite: the ext* experiments produce finite, positive
// times for all three engines in every row.
func TestExtThreeWayFinite(t *testing.T) {
	for _, id := range []string{"ext1", "ext2", "ext3", "ext4", "ext5"} {
		r, ok := Get(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		rep, err := r.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !rep.ThreeWay {
			t.Errorf("%s should render three-way", id)
		}
		if len(rep.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		for _, row := range rep.Rows {
			for col, v := range map[string]float64{
				"spark": row.Spark, "flink": row.Flink, "mapreduce": row.MapRed,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					t.Errorf("%s %s: %s time %v not finite/positive", id, row.Label, col, v)
				}
			}
		}
		if !strings.Contains(rep.Render(), "mapreduce (s)") {
			t.Errorf("%s render missing mapreduce column", id)
		}
	}
}

// TestExt3IterativeOrdering reproduces the related-work ordering: on
// iterative K-Means the MapReduce baseline is slower than both in-memory
// engines at every cluster size, and not marginally so.
func TestExt3IterativeOrdering(t *testing.T) {
	rep, err := runExt3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row.MapRed <= row.Spark || row.MapRed <= row.Flink {
			t.Errorf("%s: mapreduce %.0f should trail spark %.0f and flink %.0f",
				row.Label, row.MapRed, row.Spark, row.Flink)
		}
		if row.MapRed < 2*row.Spark {
			t.Errorf("%s: iterative gap %.1fx too small for a disk-chained baseline",
				row.Label, row.MapRed/row.Spark)
		}
	}
}

// TestExt4Ext5GraphOrdering: on the graph workloads the chained-job
// baseline trails both in-memory engines by an iterative-class margin at
// every cluster size, while spark and flink stay at the paper's ratios.
func TestExt4Ext5GraphOrdering(t *testing.T) {
	for _, run := range []func() (*Report, error){runExt4, runExt5} {
		rep, err := run()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rep.Rows {
			if row.MapRed < 2*row.Spark || row.MapRed < 2*row.Flink {
				t.Errorf("%s %s: mapreduce %.0f should be ≥2x spark %.0f / flink %.0f",
					rep.ID, row.Label, row.MapRed, row.Spark, row.Flink)
			}
		}
	}
}

// TestExt7MicroBatchLatencyAboveFlink checks the streaming family's
// defining contrast: at every offered load, the micro-batch lowering's
// end-to-end latency sits above the per-event lowering's — records wait
// for batch boundaries before they can even start processing.
func TestExt7MicroBatchLatencyAboveFlink(t *testing.T) {
	rep, err := runExt7()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Latency {
		t.Fatal("ext7 should be a latency report")
	}
	if len(rep.Rows) == 0 {
		t.Fatal("ext7 produced no rows")
	}
	for _, row := range rep.Rows {
		for col, v := range map[string]float64{
			"spark p50": row.Spark, "spark p99": row.SparkP99,
			"flink p50": row.Flink, "flink p99": row.FlinkP99,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Errorf("%s: %s latency %v not finite/positive", row.Label, col, v)
			}
		}
		if row.Spark <= row.Flink {
			t.Errorf("%s: micro-batch p50 %.1fms should exceed per-event p50 %.1fms",
				row.Label, row.Spark, row.Flink)
		}
		if row.SparkP99 < row.Spark || row.FlinkP99 < row.Flink {
			t.Errorf("%s: p99 below p50 (spark %.1f/%.1f, flink %.1f/%.1f)",
				row.Label, row.Spark, row.SparkP99, row.Flink, row.FlinkP99)
		}
	}
	out := rep.Render()
	if !strings.Contains(out, "p50/p99") {
		t.Errorf("ext7 render missing latency header:\n%s", out)
	}
}

// TestExt8ContentionMatrix checks the multi-tenant family end to end: every
// (policy × load) row carries finite JCT percentiles, utilization and queue
// delay for all three engines, and the policy contrast the family exists to
// show — under overload, FIFO's head-of-line blocking drives the p99 JCT
// above fair share's on every engine.
func TestExt8ContentionMatrix(t *testing.T) {
	rep, err := runExt8()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Latency || !rep.ThreeWay {
		t.Fatal("ext8 should be a three-way latency report")
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("ext8 rows = %d, want 6 (3 policies × 2 loads)", len(rep.Rows))
	}
	byLabel := map[string]Row{}
	for _, row := range rep.Rows {
		byLabel[row.Label] = row
		for col, v := range map[string]float64{
			"spark p50": row.Spark, "spark p99": row.SparkP99,
			"flink p50": row.Flink, "flink p99": row.FlinkP99,
			"mapreduce p50": row.MapRed, "mapreduce p99": row.MapRedP99,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Errorf("%s: %s JCT %v not finite/positive", row.Label, col, v)
			}
		}
		for col, u := range map[string]float64{
			"spark": row.SparkUtil, "flink": row.FlinkUtil, "mapreduce": row.MapRedUtil,
		} {
			if math.IsNaN(u) || u <= 0 || u > 1 {
				t.Errorf("%s: %s utilization %v outside (0,1]", row.Label, col, u)
			}
		}
		for col, q := range map[string]float64{
			"spark": row.SparkQD99, "flink": row.FlinkQD99, "mapreduce": row.MapRedQD99,
		} {
			if math.IsNaN(q) || q < 0 {
				t.Errorf("%s: %s queue-delay p99 %v invalid", row.Label, col, q)
			}
		}
	}
	// The open-loop contrast: a 4× offered-load step must drive cluster
	// utilization up for every policy on every engine — the scheduler is
	// really arbitrating more concurrent work, not pacing the submitter.
	// (The policy contrast itself — fair share bounding light-tenant JCT
	// where FIFO starves it — is asserted deterministically in
	// internal/sched's TestFairShareBoundsLightTenantJCT.)
	for _, policy := range []string{"fifo", "fair", "caps"} {
		low, high := byLabel[policy+" @ 0.2k jobs/s"], byLabel[policy+" @ 0.8k jobs/s"]
		for col, pair := range map[string][2]float64{
			"spark":     {low.SparkUtil, high.SparkUtil},
			"flink":     {low.FlinkUtil, high.FlinkUtil},
			"mapreduce": {low.MapRedUtil, high.MapRedUtil},
		} {
			if pair[1] <= pair[0] {
				t.Errorf("%s %s: utilization %0.2f at 4x load should exceed %0.2f at base load",
					policy, col, pair[1], pair[0])
			}
		}
	}
	out := rep.Render()
	for _, frag := range []string{"mapreduce p50/p99 ms", "util "} {
		if !strings.Contains(out, frag) {
			t.Errorf("ext8 render missing %q:\n%s", frag, out)
		}
	}
}

// TestExt10AdaptiveExecution checks the AQE family's two claims: the static
// planner lands near the measured oracle on every (workload × size) cell,
// and the runtime monitor catches the cardinality misestimate the adaptive
// cell is built around — at least one re-plan event in the trace, with the
// adaptive run beating the worst fixed configuration by a wide margin.
func TestExt10AdaptiveExecution(t *testing.T) {
	rep, err := runExt10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table) != 6 {
		t.Fatalf("ext10 table rows = %d, want 6 (header + 4 static + 1 adaptive)", len(rep.Table))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil {
			t.Fatalf("unparseable cell %q: %v", s, err)
		}
		return v
	}
	// Static cells (rows 1-4): regret bounded. The acceptance target is
	// ≤1.10; the gate here is looser because the oracle itself is a
	// measured minimum over millisecond-scale runs.
	for _, row := range rep.Table[1:5] {
		if regret := parse(row[6]); regret > 1.35 {
			t.Errorf("%s: planner regret %.2fx vs oracle (chose %s, oracle %s)",
				row[0], regret, row[1], row[4])
		}
	}
	// Adaptive cell (row 5): at least one re-plan happened, and the
	// adaptive run stays multiples under the worst fixed configuration.
	ad := rep.Table[5]
	if !strings.Contains(ad[1], "replans=") || strings.Contains(ad[1], "replans=0") {
		t.Errorf("adaptive cell shows no re-plan: choice %q", ad[1])
	}
	if measured, worst := parse(ad[3]), parse(ad[8]); worst < 2*measured {
		t.Errorf("adaptive %.3fs should beat worst fixed %.3fs by ≥2x", measured, worst)
	}
	// The decision trail must show the demo's mechanism: a replan event
	// that switches the hash aggregation onto the sort strategy.
	trace := strings.Join(rep.Notes, "\n")
	if !strings.Contains(trace, "[replan") {
		t.Errorf("ext10 notes missing replan trace event:\n%s", trace)
	}
	if !strings.Contains(trace, "hash") || !strings.Contains(trace, "-> mapreduce/sort") {
		t.Errorf("ext10 trace should record the hash→sort switch:\n%s", trace)
	}
}

func TestFig1ShapeMatchesPaper(t *testing.T) {
	rep, err := runFig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("fig1 rows = %d, want 5 node counts", len(rep.Rows))
	}
	last := rep.Rows[len(rep.Rows)-1] // 32 nodes
	if last.Flink >= last.Spark {
		t.Errorf("fig1@32 nodes: flink %.0f should beat spark %.0f", last.Flink, last.Spark)
	}
	if r := last.Ratio(); r < 0.85 || r > 1.0 {
		t.Errorf("fig1@32 flink/spark = %.2f, paper shows ≈0.95", r)
	}
	// Weak scaling: time at 32 nodes within 35% of time at 2 nodes.
	if rep.Rows[4].Spark > rep.Rows[0].Spark*1.35 {
		t.Errorf("spark does not weak-scale: %.0f → %.0f", rep.Rows[0].Spark, rep.Rows[4].Spark)
	}
	if !strings.Contains(rep.Render(), "spark") {
		t.Error("render missing content")
	}
}

func TestFig4GrepShape(t *testing.T) {
	rep, err := runFig4()
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last.Spark >= last.Flink {
		t.Errorf("fig4@32: spark %.0f should beat flink %.0f (paper: up to 20%%)", last.Spark, last.Flink)
	}
}

func TestFig8FlinkAdvantageGrows(t *testing.T) {
	rep, err := runFig8()
	if err != nil {
		t.Fatal(err)
	}
	first, last := rep.Rows[0], rep.Rows[len(rep.Rows)-1]
	if first.Flink >= first.Spark || last.Flink >= last.Spark {
		t.Error("flink should win tera sort at all strong-scaling points")
	}
	if last.Ratio() > first.Ratio()+0.05 {
		t.Errorf("flink advantage should not shrink: ratio %.2f → %.2f", first.Ratio(), last.Ratio())
	}
}

func TestFig11KMeansShape(t *testing.T) {
	rep, err := runFig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row.Flink >= row.Spark {
			t.Errorf("%s: flink %.0f should beat spark %.0f", row.Label, row.Flink, row.Spark)
		}
	}
	if rep.Rows[len(rep.Rows)-1].Spark >= rep.Rows[0].Spark {
		t.Error("k-means should speed up with more nodes")
	}
}

func TestFig15MediumCCAdvantage(t *testing.T) {
	rep, err := runFig15()
	if err != nil {
		t.Fatal(err)
	}
	row := rep.Rows[0] // 27 nodes
	adv := row.Spark / row.Flink
	if adv < 1.15 {
		t.Errorf("fig15@27: flink CC advantage %.2fx, paper reports up to ~30%%", adv)
	}
}

func TestTab7FailureCells(t *testing.T) {
	rep, err := runTab7()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 6 rows (3 node counts × 2 algorithms).
	if len(rep.Table) != 7 {
		t.Fatalf("tab7 rows = %d, want 7", len(rep.Table))
	}
	cell := func(row, col int) string { return rep.Table[row][col] }
	// Rows 1-4 are 27/44 nodes: flink columns must be "no".
	for row := 1; row <= 4; row++ {
		if cell(row, 4) != "no" || cell(row, 5) != "no" {
			t.Errorf("tab7 row %d: flink should fail at 27/44 nodes: %v", row, rep.Table[row])
		}
		if cell(row, 2) == "no" {
			t.Errorf("tab7 row %d: spark with doubled partitions should pass", row)
		}
	}
	// Rows 5-6 are 97 nodes: everything succeeds.
	for row := 5; row <= 6; row++ {
		for col := 2; col <= 5; col++ {
			if cell(row, col) == "no" {
				t.Errorf("tab7 row %d col %d: should pass at 97 nodes", row, col)
			}
		}
	}
	out := rep.Render()
	if !strings.Contains(out, "no") {
		t.Error("rendered table should show failure cells")
	}
}

func TestUsageReportsRender(t *testing.T) {
	for _, id := range []string{"fig3", "fig9"} {
		r, ok := Get(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		rep, err := r.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Figures) != 2 {
			t.Errorf("%s: %d figures, want 2 (one per framework)", id, len(rep.Figures))
		}
		for _, f := range rep.Figures {
			if !strings.Contains(f, "CPU %") {
				t.Errorf("%s figure missing CPU panel", id)
			}
		}
	}
}

func TestConfigTables(t *testing.T) {
	rep, err := runTab2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table) < 5 {
		t.Fatalf("tab2 too small: %d rows", len(rep.Table))
	}
	// Table II: spark parallelism at 16 nodes is 1536.
	found := false
	for _, row := range rep.Table {
		if row[0] == "spark.default.parallelism" && row[4] == "1536" {
			found = true
		}
	}
	if !found {
		t.Error("tab2 missing spark.default.parallelism=1536 at 16 nodes")
	}
	rep3, err := runTab3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Table[0]) != 7 {
		t.Errorf("tab3 should have 6 node columns, got %d", len(rep3.Table[0])-1)
	}
}

func TestTab1OperatorTable(t *testing.T) {
	rep, err := runTab1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table) != 12 {
		t.Fatalf("tab1 rows = %d, want 12 (6 workloads × 2 frameworks)", len(rep.Table))
	}
	joined := rep.Render()
	for _, frag := range []string{"ReduceByKey", "GroupCombine", "DeltaIteration", "SortPartition"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("tab1 missing operator %q", frag)
		}
	}
}

func TestTab4GraphTable(t *testing.T) {
	rep, err := runTab4()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, frag := range []string{"Twitter", "Friendster", "WDC", "64.0B"} {
		if !strings.Contains(out, frag) {
			t.Errorf("tab4 missing %q:\n%s", frag, out)
		}
	}
}

func TestRowRatioNaN(t *testing.T) {
	r := Row{Spark: math.NaN(), Flink: 10}
	if !math.IsNaN(r.Ratio()) {
		t.Error("ratio with failed spark run should be NaN")
	}
}

// TestExt11BatchAmortization pins the batch-width family's acceptance
// property on its deterministic axis: widening the batch must amortize the
// per-batch costs, so allocations per record at width 256 land far below
// width 1 (which pays a pooled arena, a writer call and a flush scan per
// record). Wall-clock is asserted only loosely (CI runners are noisy).
func TestExt11BatchAmortization(t *testing.T) {
	one, err := MeasureBatchHotPath("spark", "WordCount", 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MeasureBatchHotPath("spark", "WordCount", 256)
	if err != nil {
		t.Fatal(err)
	}
	if one.Records == 0 || one.Records != big.Records {
		t.Fatalf("record counts differ across widths: %d vs %d", one.Records, big.Records)
	}
	if big.AllocsPerRec >= one.AllocsPerRec/2 {
		t.Errorf("batch=256 allocs/record %.2f not well below batch=1's %.2f: amortization gone",
			big.AllocsPerRec, one.AllocsPerRec)
	}
	if big.NsPerRec >= one.NsPerRec {
		t.Errorf("batch=256 ns/record %.0f not below batch=1's %.0f", big.NsPerRec, one.NsPerRec)
	}

	// End-to-end at a deliberately odd width must still complete (TeraSort
	// verifies its own output order inside the run).
	if _, err := MeasureBatchE2E("mapreduce", "TeraSort", 3); err != nil {
		t.Fatal(err)
	}
}

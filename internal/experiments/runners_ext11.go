package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/engine/mapreduce"
	"repro/internal/serde"
	"repro/internal/shuffle"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ext11 is the batch-width family: the raw-speed cells of ext9 swept over
// the vectorized execution batch size. The hot-path rows isolate the
// RowBatch cycle — zero-alloc byte-view ingest (dfs.ScanLines /
// ScanFixedRecords), append into a pooled arena batch, a selection pass,
// one shuffle WriteBatch per batch, sealed blocks, and a borrowing
// LoadWire decode walked with ForEach — so the only thing that varies
// between rows is how many records amortize each per-batch cost (arena
// grab, writer call, threshold scan). The end-to-end rows run the real
// workloads with exec.batch.size set to the row's width; the batch=1 row
// additionally compiles the record-at-a-time kernels (SetVectorized off),
// making it the honest pre-vectorization baseline rather than a degenerate
// one-row batch.

func init() {
	register("ext11", "Batch width sweep — ns/record and allocs/record vs exec.batch.size, WordCount & TeraSort", runExt11)
}

const (
	ext11Trials      = 3
	ext11TextBytes   = 192 * 1024
	ext11TeraRecords = 4000
	ext11Parallelism = 4
)

var ext11Widths = []int{1, 64, 256, 1024}

func runExt11() (*Report, error) {
	rep := &Report{
		ID:        "ext11",
		Title:     "Batch-at-a-time execution: ns/record and allocs/record vs batch width (WordCount + TeraSort)",
		ThreeWay:  true,
		PerRecord: true,
		Notes: []string{
			"cells: best-of-" + fmt.Sprint(ext11Trials) + " wall-clock ns and heap allocations per record, as in ext9",
			"hot path rows: ScanLines/ScanFixedRecords byte-view ingest -> RowBatch append -> Select -> one WriteBatch per batch -> sealed blocks -> borrowing LoadWire decode; the batch width is the only variable",
			"end-to-end rows run the full workload with exec.batch.size = width; batch=1 compiles the record-at-a-time kernels (vectorization off) as the pre-vectorization baseline",
			"batch=1 pays the full per-batch cost (pooled arena, writer call, flush scan) per record; the gap to batch=256 is the amortization the vectorized layer buys",
		},
	}
	for _, wl := range []string{"WordCount", "TeraSort"} {
		for _, meas := range []struct {
			label string
			run   func(engine, wl string, width int) (RawSpeed, error)
		}{
			{wl + " hot path", MeasureBatchHotPath},
			{wl, MeasureBatchE2E},
		} {
			for _, width := range ext11Widths {
				note := ""
				if width == 1 && meas.label == wl {
					note = "record-at-a-time kernels"
				}
				row := skippedRow(fmt.Sprintf("%s b=%d", meas.label, width), note)
				for _, engine := range enabled(sim.Engines()) {
					rs, err := meas.run(engine.String(), wl, width)
					if err != nil {
						return nil, fmt.Errorf("ext11 %s b=%d %s: %w", meas.label, width, engine, err)
					}
					switch engine {
					case sim.Spark:
						row.SparkNsRec, row.SparkAllocsRec = rs.NsPerRec, rs.AllocsPerRec
					case sim.Flink:
						row.FlinkNsRec, row.FlinkAllocsRec = rs.NsPerRec, rs.AllocsPerRec
					case sim.MapReduce:
						row.MapRedNsRec, row.MapRedAllocsRec = rs.NsPerRec, rs.AllocsPerRec
					}
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

// MeasureBatchHotPath measures the vectorized per-record cycle at one batch
// width: byte-view ingest off the DFS, RowBatch building, batch-granularity
// shuffle emit under the engine's default strategy, and the borrowing
// wire-format decode. Best-of-trials after one warm-up, like ext9.
func MeasureBatchHotPath(engine, wl string, width int) (RawSpeed, error) {
	set := shuffle.Settings{Kind: shuffle.Sort}
	if engine == "flink" {
		set = shuffle.Settings{Kind: shuffle.Hash, FlushBytes: 32 * 1024}
	}
	fs := dfs.New(2, 16*core.KB, 1)
	var schema *serde.Schema
	var file *dfs.File
	var err error
	switch wl {
	case "WordCount":
		schema = serde.NewSchema(serde.KindBytes, serde.KindInt64)
		fs.WriteFile("ext11-wc", datagen.Text(33, ext11TextBytes, 10))
		file, err = fs.Open("ext11-wc")
	case "TeraSort":
		schema = serde.NewSchema(serde.KindBytes, serde.KindBytes)
		fs.WriteFile("ext11-tera", datagen.TeraGen(7, ext11TeraRecords))
		file, err = fs.Open("ext11-tera")
	default:
		return RawSpeed{}, fmt.Errorf("unknown workload %q", wl)
	}
	if err != nil {
		return RawSpeed{}, err
	}
	spec := shuffle.Spec[serde.Row]{
		NumParts: ext11Parallelism,
		Codec:    schema.Codec(),
		Route: func(r serde.Row) int {
			b, _ := r.Bytes(0)
			return int(fnvHash(b) % uint64(ext11Parallelism))
		},
	}
	keep := func(r serde.Row) bool {
		b, _ := r.Bytes(0)
		return len(b) > 0
	}
	consume := func(r serde.Row) { _, _ = r.Bytes(0) }
	if wl == "TeraSort" {
		spec.Less = func(a, b serde.Row) bool {
			ab, _ := a.Bytes(0)
			bb, _ := b.Bytes(0)
			return bytes.Compare(ab, bb) < 0
		}
		spec.NormKey = func(v serde.Row, dst []byte) []byte {
			b, _ := v.Bytes(0)
			return serde.AppendKeyTailBytes(dst, b)
		}
	}
	best := RawSpeed{}
	for trial := 0; trial <= ext11Trials; trial++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		n, err := batchHotPathCycle(spec, set, schema, file, wl, width, keep, consume)
		if err != nil {
			return RawSpeed{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		best.Records = n
		if trial == 0 {
			continue // warm-up: pool and flat-file cache fill here
		}
		ns := float64(elapsed.Nanoseconds()) / float64(n)
		allocs := float64(after.Mallocs-before.Mallocs) / float64(n)
		if best.NsPerRec == 0 || ns < best.NsPerRec {
			best.NsPerRec = ns
		}
		if best.AllocsPerRec == 0 || allocs < best.AllocsPerRec {
			best.AllocsPerRec = allocs
		}
	}
	return best, nil
}

// batchHotPathCycle runs one ingest -> batch -> emit -> seal -> decode
// cycle and returns the record count. Built batches stay live until the
// writer closes — a sort-strategy writer buffers the borrowed rows, so
// their arenas must not recycle mid-cycle — then everything returns to the
// pool so the next cycle runs at steady state.
func batchHotPathCycle(spec shuffle.Spec[serde.Row], set shuffle.Settings, schema *serde.Schema,
	file *dfs.File, wl string, width int, keep func(serde.Row) bool, consume func(serde.Row)) (int64, error) {
	blocks := make(map[int][]shuffle.Block, spec.NumParts)
	w := shuffle.NewWriter(spec, shuffle.Env{Settings: set, Emit: func(p int, b shuffle.Block) error {
		if b.Len() == 0 {
			b.Release()
			return nil
		}
		blocks[p] = append(blocks[p], b)
		return nil
	}})
	var live []*serde.RowBatch
	var rowScratch []serde.Row
	batch := serde.NewRowBatch(schema, width)
	rb := schema.NewBuilder()
	defer rb.Release()
	var emitted int64
	flush := func() error {
		if batch.Len() == 0 {
			return nil
		}
		batch.Select(keep)
		rowScratch = batch.Rows(rowScratch[:0])
		emitted += int64(len(rowScratch))
		err := w.WriteBatch(rowScratch)
		live = append(live, batch)
		batch = serde.NewRowBatch(schema, width)
		return err
	}
	var ingestErr error
	add := func() {
		if ingestErr != nil {
			return
		}
		batch.AppendFrom(rb)
		if batch.Len() == width {
			ingestErr = flush()
		}
	}
	switch wl {
	case "WordCount":
		for blk := 0; blk < file.NumBlocks(); blk++ {
			file.ScanLines(blk, func(line []byte) {
				// Tokenize in place: every word is a borrowed view of the
				// line, which is a borrowed view of the block.
				for i := 0; i < len(line); {
					for i < len(line) && line[i] == ' ' {
						i++
					}
					j := i
					for j < len(line) && line[j] != ' ' {
						j++
					}
					if j > i {
						rb.Reset()
						rb.SetBytes(0, line[i:j])
						rb.SetInt64(1, 1)
						add()
					}
					i = j
				}
			})
		}
	case "TeraSort":
		for blk := 0; blk < file.NumBlocks(); blk++ {
			file.ScanFixedRecords(blk, 100, func(rec []byte) {
				rb.Reset()
				rb.SetBytes(0, rec[:10])
				rb.SetBytes(1, rec[10:])
				add()
			})
		}
	}
	if ingestErr == nil {
		ingestErr = flush()
	}
	if ingestErr != nil {
		return 0, ingestErr
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	batch.Release()
	for _, b := range live {
		b.Release()
	}
	// Decode side: the block payload IS the RowBatch wire format, so the
	// read path is a borrowing LoadWire walked in place.
	dec := serde.NewRowBatch(schema, 0)
	var seen int64
	for p := 0; p < spec.NumParts; p++ {
		for _, b := range blocks[p] {
			view := b.Borrow()
			raw, err := shuffle.Unpack(set, view.Bytes())
			if err != nil {
				return 0, err
			}
			if err := dec.LoadWire(raw); err != nil {
				return 0, err
			}
			dec.ForEach(func(r serde.Row) {
				consume(r)
				seen++
			})
			view.Release()
			b.Release()
		}
	}
	dec.Release()
	if seen != emitted {
		return 0, fmt.Errorf("ext11: decoded %d of %d records", seen, emitted)
	}
	return emitted, nil
}

// MeasureBatchE2E runs one full workload on one engine with
// exec.batch.size forced to the given width. width 1 also compiles the
// record-at-a-time kernels, so that row is the pre-vectorization engine,
// not a one-row batch. The kernel toggle is process-global; callers must
// not measure concurrently.
func MeasureBatchE2E(engine, wl string, width int) (RawSpeed, error) {
	if width == 1 {
		prev := dataflow.SetVectorized(false)
		defer dataflow.SetVectorized(prev)
	}
	text := datagen.Text(33, ext11TextBytes, 10)
	tera := datagen.TeraGen(7, ext11TeraRecords)
	records := int64(ext11TeraRecords)
	if wl == "WordCount" {
		records = int64(bytes.Count(text, []byte("\n")))
	}
	if records == 0 {
		return RawSpeed{}, fmt.Errorf("ext11: empty %s input", wl)
	}
	best := RawSpeed{Records: records}
	for trial := 0; trial <= ext11Trials; trial++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := ext11Run(engine, wl, width, text, tera); err != nil {
			return RawSpeed{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if trial == 0 {
			continue
		}
		ns := float64(elapsed.Nanoseconds()) / float64(records)
		allocs := float64(after.Mallocs-before.Mallocs) / float64(records)
		if best.NsPerRec == 0 || ns < best.NsPerRec {
			best.NsPerRec = ns
		}
		if best.AllocsPerRec == 0 || allocs < best.AllocsPerRec {
			best.AllocsPerRec = allocs
		}
	}
	return best, nil
}

// ext11Run executes one workload once, mirroring ext9Run with the batch
// width pinned through the configuration (the key the adaptive planner is
// allowed to derive).
func ext11Run(engine, wl string, width int, text, tera []byte) error {
	spec := cluster.Spec{Nodes: 2, CoresPerNode: 8, MemPerNode: core.GB, DiskSeqMiBps: 200, NetMiBps: 200}
	rt, err := cluster.NewRuntime(spec, 8)
	if err != nil {
		return err
	}
	conf := core.NewConfig().
		SetInt(core.SparkDefaultParallelism, ext11Parallelism).
		SetInt(core.FlinkDefaultParallelism, ext11Parallelism).
		SetInt(mapreduce.MRReduceTasks, ext11Parallelism).
		SetInt(core.FlinkNetworkBuffers, 8192).
		SetBytes(core.SparkExecutorMemory, 512*core.MB).
		SetBytes(core.FlinkTaskManagerMemory, 256*core.MB).
		SetInt(core.ExecBatchSize, width)
	s, err := dataflow.Open(engine, dataflow.WithConfig(conf), dataflow.WithRuntime(rt), dataflow.WithFS(dfs.New(spec.Nodes, 16*core.KB, 1)))
	if err != nil {
		return err
	}
	switch wl {
	case "WordCount":
		s.FS().WriteFile("ext11-wc", text)
		return workloads.WordCount(s, "ext11-wc", "ext11-wc-out")
	case "TeraSort":
		s.FS().WriteFile("ext11-tera", tera)
		part := workloads.TeraPartitioner(tera, ext11Parallelism)
		if err := workloads.TeraSort(s, "ext11-tera", "ext11-tera-out", part); err != nil {
			return err
		}
		return workloads.VerifyTeraSorted(s.FS(), "ext11-tera-out", ext11TeraRecords)
	}
	return fmt.Errorf("unknown workload %q", wl)
}

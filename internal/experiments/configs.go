// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment id (tab1..tab7, fig1..fig17) maps to
// a runner that produces a Report with the same rows/series the paper
// plots; scaling and resource figures come from the paper-scale simulator,
// operator tables from the real engines' planners.
package experiments

import (
	"repro/internal/core"
)

// tab2Config returns the Word Count / Grep settings of Table II for a node
// count (fixed 24 GB per node).
func tab2Config(nodes int) *core.Config {
	sparkPar := map[int]int{2: 192, 4: 384, 8: 768, 16: 1536, 32: 1024}
	flinkPar := map[int]int{2: 32, 4: 64, 8: 128, 16: 256, 32: 512}
	flinkMem := map[int]core.ByteSize{2: 4, 4: 4, 8: 4, 16: 4, 32: 11}
	c := core.NewConfig()
	c.SetInt(core.SparkDefaultParallelism, sparkPar[nodes])
	c.SetInt(core.FlinkDefaultParallelism, flinkPar[nodes])
	c.SetBytes(core.SparkExecutorMemory, 22*core.GB)
	c.SetBytes(core.FlinkTaskManagerMemory, flinkMem[nodes]*core.GB)
	c.SetBytes(core.HDFSBlockSize, 256*core.MB)
	c.SetInt(core.FlinkNetworkBuffers, nodes*2048)
	c.SetBytes(core.BufferSize, 64*core.KB)
	return c
}

// tab3Config returns the Tera Sort settings of Table III.
func tab3Config(nodes int) *core.Config {
	sparkPar := map[int]int{17: 544, 34: 1088, 63: 1984, 55: 1760, 73: 2336, 97: 3104}
	flinkPar := map[int]int{17: 134, 34: 270, 63: 500, 55: 475, 73: 580, 97: 750}
	c := core.NewConfig()
	c.SetInt(core.SparkDefaultParallelism, sparkPar[nodes])
	c.SetInt(core.FlinkDefaultParallelism, flinkPar[nodes])
	c.SetBytes(core.SparkExecutorMemory, 62*core.GB)
	c.SetBytes(core.FlinkTaskManagerMemory, 62*core.GB)
	c.SetBytes(core.HDFSBlockSize, core.GB)
	c.SetInt(core.FlinkNetworkBuffers, nodes*1024)
	c.SetBytes(core.BufferSize, 128*core.KB)
	return c
}

// tab5Config returns the small-graph settings of Table V (formulas over
// nodes × cores).
func tab5Config(nodes int) *core.Config {
	const cores = 16
	c := core.NewConfig()
	c.SetInt(core.SparkDefaultParallelism, nodes*cores*6)
	c.SetInt(core.FlinkDefaultParallelism, nodes*cores)
	c.SetInt(core.SparkEdgePartitions, nodes*cores)
	c.SetInt(core.FlinkNetworkBuffers, cores*cores*nodes*16)
	c.SetBytes(core.SparkExecutorMemory, 96*core.GB)
	c.SetBytes(core.FlinkTaskManagerMemory, 18*core.GB)
	return c
}

// tab6Config returns the medium-graph settings of Table VI.
func tab6Config(nodes int) *core.Config {
	type row struct {
		sparkPar, flinkPar, sparkMem, flinkMem, edgeParts int
	}
	rows := map[int]row{
		24: {1440, 288, 22, 18, 1440},
		27: {1620, 297, 96, 18, 256},
		34: {1632, 442, 62, 62, 320},
		55: {2640, 715, 62, 62, 480},
	}
	r := rows[nodes]
	c := core.NewConfig()
	c.SetInt(core.SparkDefaultParallelism, r.sparkPar)
	c.SetInt(core.FlinkDefaultParallelism, r.flinkPar)
	c.SetBytes(core.SparkExecutorMemory, core.ByteSize(r.sparkMem)*core.GB)
	c.SetBytes(core.FlinkTaskManagerMemory, core.ByteSize(r.flinkMem)*core.GB)
	c.SetInt(core.SparkEdgePartitions, r.edgeParts)
	c.SetInt(core.FlinkNetworkBuffers, 16*16*nodes*16)
	return c
}

// tab7Config returns the large-graph settings used for Table VII: 62 GB of
// memory, doubled edge partitions for Spark, and (at 97 nodes) Flink
// parallelism reduced to ¾ of the cores so the CoGroup fits.
func tab7Config(nodes int) *core.Config {
	const cores = 16
	c := core.NewConfig()
	c.SetBytes(core.SparkExecutorMemory, 62*core.GB)
	c.SetBytes(core.FlinkTaskManagerMemory, 62*core.GB)
	c.SetInt(core.SparkEdgePartitions, nodes*cores*2)
	if nodes >= 97 {
		c.SetInt(core.FlinkDefaultParallelism, nodes*12)
	} else {
		c.SetInt(core.FlinkDefaultParallelism, nodes*cores)
	}
	c.SetInt(core.FlinkNetworkBuffers, cores*cores*nodes*16)
	return c
}

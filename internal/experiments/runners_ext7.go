package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/des"
	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/streaming"
	"repro/internal/workloads"
)

// ext7 is the streaming experiment family: the same clickstream CTR plan
// run LIVE against an open-loop arrival process, once through the
// Spark-style micro-batch lowering and once through the Flink-style
// per-event lowering. Cells are end-to-end (ingest → window emission)
// latency percentiles in milliseconds; the contrast the row sweep shows is
// the micro-batch latency floor — records wait for the next batch
// boundary before they can even start processing — holding across offered
// throughputs and burstiness.

func init() {
	register("ext7", "Streaming CTR — p50/p99 latency vs offered load, micro-batch vs per-event", runExt7)
}

// ext7RunFor is the wall-clock length of one measured run. Long enough for
// several batch intervals and dozens of closed windows, short enough that
// the whole family stays test-suite friendly.
const ext7RunFor = 350 * time.Millisecond

func runExt7() (*Report, error) {
	rep := &Report{
		ID:      "ext7",
		Title:   "Streaming CTR: latency vs offered throughput (micro-batch vs per-event)",
		Latency: true,
		Notes: []string{
			"cells: end-to-end ingest→emit latency, p50 / p99 ms over one open-loop run of " + fmt.Sprint(ext7RunFor),
			"spark column = micro-batch lowering (driver loop over the batch dataflow, streaming.batch.interval=100ms)",
			"flink column = per-event lowering (records pushed one at a time through the pipelined exchange)",
			"window 50ms, watermark bound 10ms; arrivals from internal/des (Poisson and 2-state MMPP)",
			"lit: micro-batch latency floors at the batch interval; per-event pays only window-close wait",
		},
	}
	rows := []struct {
		label string
		note  string
		mk    func() des.ArrivalProcess
	}{
		{"poisson 500/s", "light load", func() des.ArrivalProcess { return des.NewPoisson(11, 500) }},
		{"poisson 2000/s", "4x offered load", func() des.ArrivalProcess { return des.NewPoisson(13, 2000) }},
		{"mmpp 2000/s", "same mean rate, bursty (MMPP)", func() des.ArrivalProcess { return des.NewMMPP(17, 500, 8000, 0.08, 0.02) }},
	}
	for _, r := range rows {
		row := skippedRow(r.label, r.note)
		for _, engine := range enabled(sim.Engines()) {
			switch engine {
			case sim.Spark:
				snap, err := ext7Run("spark", r.mk())
				if err != nil {
					return nil, fmt.Errorf("ext7 %s micro-batch: %w", r.label, err)
				}
				row.Spark, row.SparkP99 = snap.P50, snap.P99
			case sim.Flink:
				snap, err := ext7Run("flink", r.mk())
				if err != nil {
					return nil, fmt.Errorf("ext7 %s per-event: %w", r.label, err)
				}
				row.Flink, row.FlinkP99 = snap.P50, snap.P99
			case sim.MapReduce:
				// No streaming lowering targets the MapReduce engine; the
				// cell stays "-" (and the report is two-way anyway).
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// ext7Run measures one (engine, arrival process) cell: tail a live
// 2-partition log while an open-loop producer paced by the arrival process
// appends clicks, then return the session's latency percentiles. The
// producer is open-loop in the queueing sense — arrival times come from
// the process alone, never from how fast the consumer drains.
func ext7Run(engine string, proc des.ArrivalProcess) (metrics.LatencySnapshot, error) {
	const parts = 2
	spec := cluster.Spec{Nodes: 2, CoresPerNode: 4, MemPerNode: core.GB, DiskSeqMiBps: 200, NetMiBps: 200}
	rt, err := cluster.NewRuntime(spec, 4)
	if err != nil {
		return metrics.LatencySnapshot{}, err
	}
	conf := core.NewConfig().
		SetInt(core.FlinkDefaultParallelism, 4).
		SetBytes(core.BufferSize, 64) // per-event exchange: flush every record
	conf.SetDuration(core.StreamingWindowSize, 50*time.Millisecond)
	conf.SetDuration(core.StreamingWatermarkBound, 10*time.Millisecond)
	conf.SetDuration(core.StreamingIdleTimeout, 100*time.Millisecond)
	conf.SetDuration(core.StreamingBatchInterval, 100*time.Millisecond)
	fs := dfs.New(spec.Nodes, 16*core.KB, 1)
	s, err := dataflow.Open(engine, dataflow.WithConfig(conf), dataflow.WithRuntime(rt), dataflow.WithFS(fs))
	if err != nil {
		return metrics.LatencySnapshot{}, err
	}
	l := streaming.NewLog[workloads.Click](fs, "ext7-clicks", parts)
	agg := workloads.CTRWindows(s, l, conf)

	done := make(chan error, 1)
	go func() {
		var err error
		if engine == "flink" {
			_, err = streaming.RunPerEvent(agg, conf)
		} else {
			_, err = streaming.RunMicroBatch(agg, conf)
		}
		done <- err
	}()

	base := time.Now()
	deadline := base.Add(ext7RunFor)
	next := base
	for i := 0; ; i++ {
		next = next.Add(time.Duration(proc.Next() * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		// Sleep to the scheduled arrival; if the producer fell behind the
		// schedule it catches up without sleeping (open loop, no backoff).
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		tm := time.Since(base).Milliseconds()
		click := workloads.Click{Ad: int64(i % 5), Click: i%10 == 0}
		if _, err := l.Append(i%parts, tm, click); err != nil {
			return metrics.LatencySnapshot{}, err
		}
	}
	l.Seal()
	if err := <-done; err != nil {
		return metrics.LatencySnapshot{}, err
	}
	snap := s.Metrics().Latency.Snapshot()
	if snap.Count == 0 {
		return snap, fmt.Errorf("run emitted no windows")
	}
	return snap, nil
}

package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The ext* experiments extend the paper's two-way evaluation with the
// disk-oriented MapReduce baseline, reproducing the qualitative orderings
// of the related work (Tekdogan & Cakmak; Awan et al.): the in-memory
// engines lead moderately on one-pass batch jobs and by a wide margin on
// iterative workloads.

func init() {
	register("ext1", "Word Count — Spark vs Flink vs MapReduce (24 GB/node)", runExt1)
	register("ext2", "Tera Sort — Spark vs Flink vs MapReduce (3.5 TB)", runExt2)
	register("ext3", "K-Means — Spark vs Flink vs MapReduce (iterative)", runExt3)
	register("ext4", "Page Rank — Small Graph, Spark vs Flink vs MapReduce (fig12 + baseline)", runExt4)
	register("ext5", "Connected Components — Small Graph, Spark vs Flink vs MapReduce (fig14 + baseline)", runExt5)
}

// threeWayReport is scalingReport's analog across all three engines.
func threeWayReport(id, title string, nodeCounts []int,
	jobFor func(nodes int) sim.Job, confFor func(nodes int) *core.Config,
	notes []string) (*Report, error) {
	rep := &Report{ID: id, Title: title, ThreeWay: true, Notes: notes}
	for _, n := range nodeCounts {
		conf := confFor(n)
		job := jobFor(n)
		row := skippedRow(fmt.Sprintf("%d nodes", n), "")
		for _, engine := range enabled(sim.Engines()) {
			p := sim.Params{Spec: cluster.Grid5000(n), Engine: engine, Conf: conf}
			times, err := sim.Trials(job, p, trials)
			if err != nil {
				return nil, fmt.Errorf("%s at %d nodes (%v): %w", id, n, engine, err)
			}
			s := stats.Summarize(times)
			switch engine {
			case sim.Spark:
				row.Spark, row.SparkStd = s.Mean, s.Std
			case sim.Flink:
				row.Flink, row.FlinkStd = s.Mean, s.Std
			case sim.MapReduce:
				row.MapRed, row.MapRedStd = s.Mean, s.Std
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func runExt1() (*Report, error) {
	return threeWayReport("ext1", "Word Count weak scaling, three engines, 24 GB/node",
		[]int{8, 16, 32},
		func(n int) sim.Job { return sim.WordCountJob{TotalBytes: core.ByteSize(n) * 24 * core.GB} },
		tab2Config,
		[]string{"lit: one-pass batch — MapReduce trails both in-memory engines moderately (staged I/O, no pipelining)"})
}

func runExt2() (*Report, error) {
	return threeWayReport("ext2", "Tera Sort strong scaling, three engines, 3.5 TB",
		[]int{55, 73, 97},
		func(n int) sim.Job { return sim.TeraSortJob{TotalBytes: teraBytes} },
		tab3Config,
		[]string{"lit: uncompressed shuffle + on-disk merges widen the gap over the in-memory engines"})
}

func runExt3() (*Report, error) {
	return threeWayReport("ext3", "K-Means, three engines, 51 GB, 10 iterations",
		[]int{8, 14, 20, 24},
		func(n int) sim.Job { return sim.KMeansJob{TotalBytes: 51 * core.GB, Iterations: 10} },
		func(n int) *core.Config { return core.NewConfig() },
		[]string{"lit: each MapReduce iteration re-reads the input from DFS and pays job startup — the several-fold iterative gap of Tekdogan & Cakmak"})
}

func runExt4() (*Report, error) {
	return threeWayReport("ext4", "Page Rank, Small Graph (Twitter), 20 iterations, three engines",
		[]int{8, 14, 20, 27},
		func(n int) sim.Job {
			return sim.GraphJob{Algo: sim.PageRank, Graph: datagen.SmallGraph, SizeBytes: smallBytes, Iterations: 20}
		},
		tab5Config,
		[]string{"lit: every superstep's chained job re-reads and re-parses the edge list from the DFS — the iterative graph gap (fig12 adds the paper's spark/flink numbers)"})
}

func runExt5() (*Report, error) {
	return threeWayReport("ext5", "Connected Components, Small Graph, 20 supersteps, three engines",
		[]int{8, 14, 20, 27},
		func(n int) sim.Job {
			return sim.GraphJob{Algo: sim.ConnComp, Graph: datagen.SmallGraph, SizeBytes: smallBytes, Iterations: 20}
		},
		tab5Config,
		[]string{"lit: the message volume converges like the in-memory engines' but the per-superstep edge scan and job startup never shrink — delta iterations' advantage made visible"})
}

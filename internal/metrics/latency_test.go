package metrics

import (
	"testing"
	"time"
)

func TestLatencySketchQuantiles(t *testing.T) {
	var l LatencySketch
	if got := l.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %v, want 0", got)
	}
	// 1..100 ms, observed out of order.
	for i := 100; i >= 1; i-- {
		l.ObserveMillis(float64(i))
	}
	if got := l.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got := l.Quantile(0.5); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := l.Quantile(0.99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := l.Quantile(1.0); got != 100 {
		t.Errorf("max = %v, want 100", got)
	}
	if got := l.Quantile(0); got != 1 {
		t.Errorf("min = %v, want 1", got)
	}
	if got := l.Mean(); got != 50.5 {
		t.Errorf("mean = %v, want 50.5", got)
	}

	var other LatencySketch
	other.Observe(200 * time.Millisecond)
	l.Merge(&other)
	if got := l.Quantile(1.0); got != 200 {
		t.Errorf("max after merge = %v, want 200", got)
	}
	snap := l.Snapshot()
	if snap.Count != 101 || snap.Max != 200 {
		t.Errorf("snapshot = %+v, want Count 101 Max 200", snap)
	}
	l.Reset()
	if l.Count() != 0 {
		t.Error("Reset did not clear samples")
	}
}

// TestQueueDelaySketch pins the scheduler's queue-delay sketch: same
// exact-quantile behaviour as LatencySketch, distinct type so JCT and
// queue-delay distributions cannot be merged by accident.
func TestQueueDelaySketch(t *testing.T) {
	var qd QueueDelay
	for i := 1; i <= 100; i++ {
		qd.ObserveMillis(float64(i))
	}
	snap := qd.Snapshot()
	if snap.Count != 100 {
		t.Errorf("count = %d, want 100", snap.Count)
	}
	if snap.P50 != 50 {
		t.Errorf("p50 = %v, want 50", snap.P50)
	}
	if snap.P99 != 99 {
		t.Errorf("p99 = %v, want 99", snap.P99)
	}
	if snap.Max != 100 {
		t.Errorf("max = %v, want 100", snap.Max)
	}
}

package metrics

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/stats"
)

func TestJobMetricsSnapshot(t *testing.T) {
	m := &JobMetrics{}
	m.ShuffleBytesWritten.Add(100)
	m.CombineInputRecords.Add(90)
	m.CombineOutputRecs.Add(30)
	m.Stages.Add(2)
	s := m.Snapshot()
	if s.ShuffleBytesWritten != 100 || s.Stages != 2 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.CombineRatio != 3.0 {
		t.Errorf("combine ratio = %v, want 3", s.CombineRatio)
	}
}

func TestCombineRatioNoCombine(t *testing.T) {
	m := &JobMetrics{}
	if m.CombineRatio() != 1 {
		t.Error("no combining should report ratio 1")
	}
}

func TestJobMetricsConcurrent(t *testing.T) {
	m := &JobMetrics{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.TasksLaunched.Add(1)
			}
		}()
	}
	wg.Wait()
	if m.TasksLaunched.Load() != 8000 {
		t.Errorf("tasks = %d, want 8000", m.TasksLaunched.Load())
	}
}

func TestTimelineSpans(t *testing.T) {
	tl := NewTimeline()
	end := tl.StartSpan("stage1")
	end()
	tl.AddSpan("stage2", 10, 20)
	spans := tl.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[1].Label != "stage2" || spans[1].Duration() != 10 {
		t.Errorf("span = %+v", spans[1])
	}
	start, endT := tl.MakeSpan()
	if start > 0.001 || endT != 20 {
		t.Errorf("extent = %v..%v", start, endT)
	}
	if !strings.Contains(tl.String(), "stage2") {
		t.Error("String() missing span")
	}
}

func TestTimelineEmptyExtent(t *testing.T) {
	tl := NewTimeline()
	s, e := tl.MakeSpan()
	if s != 0 || e != 0 {
		t.Error("empty timeline extent should be 0,0")
	}
}

func TestCorrelationRender(t *testing.T) {
	tl := NewTimeline()
	tl.AddSpan("DC=DataSource->FlatMap->GroupCombine", 0, 500)
	tl.AddSpan("DS=DataSink", 500, 540)
	cpu := &stats.StepSeries{}
	cpu.Add(0, 80)
	cpu.Add(540, 0)
	c := &Correlation{
		Framework: "flink",
		Workload:  "WordCount",
		TotalTime: 540,
		Timeline:  tl,
		Usage:     ResourceUsage{CPUPercent: cpu},
	}
	out := c.Render(40)
	for _, frag := range []string{"flink/WordCount", "540 seconds", "DC=", "CPU %"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	// The DC span bar should be much longer than the DS bar.
	lines := strings.Split(out, "\n")
	var dcBar, dsBar int
	for _, l := range lines {
		if strings.Contains(l, "DC=") {
			dcBar = strings.Count(l, "=") - 1 // minus the label's '='
		}
		if strings.Contains(l, "DS=") {
			dsBar = strings.Count(l, "=")
		}
	}
	if dcBar <= dsBar {
		t.Errorf("span bars out of proportion: DC=%d DS=%d", dcBar, dsBar)
	}
}

package metrics

import (
	"sort"
	"sync"
	"time"
)

// LatencySketch accumulates per-record end-to-end latencies (ingest→emit)
// and answers quantile queries. The streaming runners observe one sample
// per emitted record, so the sketch holds the exact distribution — at the
// repo's laptop scale a sorted copy at query time is cheaper than a
// mergeable digest and keeps p50/p99 exact.
type LatencySketch struct {
	mu      sync.Mutex
	samples []float64 // milliseconds
	sorted  bool
}

// Observe records one latency sample.
func (l *LatencySketch) Observe(d time.Duration) {
	l.ObserveMillis(float64(d) / float64(time.Millisecond))
}

// ObserveMillis records one latency sample in milliseconds.
func (l *LatencySketch) ObserveMillis(ms float64) {
	l.mu.Lock()
	l.samples = append(l.samples, ms)
	l.sorted = false
	l.mu.Unlock()
}

// Count reports the number of samples observed.
func (l *LatencySketch) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) in milliseconds using the
// nearest-rank method, or 0 when no samples have been observed.
func (l *LatencySketch) Quantile(q float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.samples)
	if n == 0 {
		return 0
	}
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	if q <= 0 {
		return l.samples[0]
	}
	idx := int(q*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return l.samples[idx]
}

// Mean returns the average sample in milliseconds, or 0 with no samples.
func (l *LatencySketch) Mean() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range l.samples {
		sum += s
	}
	return sum / float64(len(l.samples))
}

// Merge folds other's samples into l.
func (l *LatencySketch) Merge(other *LatencySketch) {
	other.mu.Lock()
	in := append([]float64(nil), other.samples...)
	other.mu.Unlock()
	l.mu.Lock()
	l.samples = append(l.samples, in...)
	l.sorted = false
	l.mu.Unlock()
}

// Reset discards all samples.
func (l *LatencySketch) Reset() {
	l.mu.Lock()
	l.samples = l.samples[:0]
	l.sorted = true
	l.mu.Unlock()
}

// LatencySnapshot is a plain-value percentile summary for reports.
type LatencySnapshot struct {
	Count int
	P50   float64 // milliseconds
	P99   float64
	Max   float64
	Mean  float64
}

// LatencySnapshot summarizes the distribution observed so far.
func (l *LatencySketch) Snapshot() LatencySnapshot {
	return LatencySnapshot{
		Count: l.Count(),
		P50:   l.Quantile(0.50),
		P99:   l.Quantile(0.99),
		Max:   l.Quantile(1.0),
		Mean:  l.Mean(),
	}
}

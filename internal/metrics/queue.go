package metrics

// QueueDelay accumulates per-job queueing delays — submission to first
// slot grant — for the multi-tenant scheduler, on the same exact-quantile
// machinery as the streaming LatencySketch. Keeping it a distinct type
// separates the two distributions a contention report must not conflate:
// JCT (submission→completion, what a tenant experiences) and queue delay
// (how long admission and the sharing policy made the job wait before it
// held any slot at all). The ext8 experiment reports both.
type QueueDelay struct {
	LatencySketch
}

package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one operator's execution interval, in seconds relative to job
// start. Real runs fill it from wall-clock time; simulated runs from
// virtual time.
type Span struct {
	Label string
	Start float64
	End   float64
}

// Duration returns the span length in seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// Timeline records operator spans for one job, the left-hand side of the
// paper's correlation figures (e.g. "DC=DataSource->FlatMap->GroupCombine
// runs 0..538.7s").
type Timeline struct {
	mu     sync.Mutex
	origin time.Time
	spans  []Span
}

// NewTimeline starts a wall-clock timeline.
func NewTimeline() *Timeline {
	return &Timeline{origin: time.Now()}
}

// StartSpan opens a span at the current wall-clock offset and returns a
// function that closes it.
func (t *Timeline) StartSpan(label string) (end func()) {
	t.mu.Lock()
	start := time.Since(t.origin).Seconds()
	idx := len(t.spans)
	t.spans = append(t.spans, Span{Label: label, Start: start, End: start})
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		t.spans[idx].End = time.Since(t.origin).Seconds()
		t.mu.Unlock()
	}
}

// AddSpan records an externally timed span (used by the simulator, whose
// clock is virtual).
func (t *Timeline) AddSpan(label string, start, end float64) {
	t.mu.Lock()
	t.spans = append(t.spans, Span{Label: label, Start: start, End: end})
	t.mu.Unlock()
}

// Spans returns a copy sorted by start time (ties by label).
func (t *Timeline) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// MakeSpan returns the total extent (earliest start to latest end).
func (t *Timeline) MakeSpan() (start, end float64) {
	spans := t.Spans()
	if len(spans) == 0 {
		return 0, 0
	}
	start = spans[0].Start
	end = spans[0].End
	for _, s := range spans {
		if s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
	}
	return start, end
}

// String renders the spans in the caption style of the paper's figures.
func (t *Timeline) String() string {
	var b strings.Builder
	for _, s := range t.Spans() {
		fmt.Fprintf(&b, "%-42s %8.1fs .. %8.1fs (%.1fs)\n", s.Label, s.Start, s.End, s.Duration())
	}
	return b.String()
}

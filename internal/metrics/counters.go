// Package metrics implements the paper's methodology: collect end-to-end
// execution data (operator spans, per-resource usage series, engine
// counters) and correlate the operators execution plan with resource
// utilization. Both mini-engines update JobMetrics and Timeline while
// running for real; the paper-scale simulator produces the same structures
// over virtual time, so one correlation report serves both layers.
package metrics

import "sync/atomic"

// JobMetrics aggregates engine counters for one job. All fields are safe
// for concurrent update by tasks.
//
// Shuffle byte accounting follows ONE rule on every engine, so the
// counters compare across frameworks (the ext6 strategy sweeps rely on
// this):
//
//   - ShuffleBytesWritten and ShuffleBytesRead count WIRE bytes — the
//     blocks as stored or sent, after any shuffle.compress codec.
//     ShuffleRawBytesWritten counts the serialized bytes before
//     compression; the ratio of the two is the compression ratio.
//   - A read is LOCAL iff the consuming task runs on the node that holds
//     the block it reads: for Spark, the node of the map task that
//     produced the output; for Flink, the node of the producing exchange
//     subtask (carried on every in-flight packet); for MapReduce, the node
//     of the DFS replica the segment is fetched from — its materialized
//     shuffle really does fetch from the filesystem, so replica placement
//     is the honest source. Everything else is REMOTE, and
//     ShuffleBytesRead = LocalBytesRead + RemoteBytesRead always holds.
//   - Spill accounting (SpillCount/SpillBytes) counts sorted runs flushed
//     under memory pressure, in serialized bytes; only engines that
//     materialize spills (MapReduce) also charge them to DiskBytes.
//
// Engines route shuffle traffic through AddShuffleWrite/AddShuffleRead so
// the rule cannot drift per call site.
type JobMetrics struct {
	ShuffleBytesWritten atomic.Int64
	// ShuffleRawBytesWritten is the pre-compression serialized volume.
	ShuffleRawBytesWritten atomic.Int64
	ShuffleBytesRead       atomic.Int64
	RemoteBytesRead        atomic.Int64
	LocalBytesRead         atomic.Int64
	SpillCount             atomic.Int64
	SpillBytes             atomic.Int64
	DiskBytesWritten       atomic.Int64
	DiskBytesRead          atomic.Int64
	TasksLaunched          atomic.Int64
	Stages                 atomic.Int64
	RecordsRead            atomic.Int64
	RecordsWritten         atomic.Int64
	CacheHits              atomic.Int64
	CacheMisses            atomic.Int64
	Recomputations         atomic.Int64
	CombineInputRecords    atomic.Int64
	CombineOutputRecs      atomic.Int64
	SchedulingRounds       atomic.Int64
	// Latency holds per-record ingest→emit latencies for streaming jobs;
	// batch jobs leave it empty. See LatencySketch.
	Latency LatencySketch

	// stageObserver, when set, receives a StageEvent at every stage
	// boundary (see SetStageObserver).
	stageObserver atomic.Pointer[stageObserverBox]
}

// AddShuffleWrite records one produced shuffle block under the shared
// accounting rule: wire bytes on ShuffleBytesWritten, pre-compression bytes
// on ShuffleRawBytesWritten, and — when the engine materializes shuffle
// files (Spark, MapReduce) — the wire bytes on DiskBytesWritten too.
func (m *JobMetrics) AddShuffleWrite(wire, raw int64, toDisk bool) {
	m.ShuffleBytesWritten.Add(wire)
	m.ShuffleRawBytesWritten.Add(raw)
	if toDisk {
		m.DiskBytesWritten.Add(wire)
	}
}

// AddShuffleRead records one consumed shuffle block: wire bytes on
// ShuffleBytesRead plus the local/remote split (see the rule above).
func (m *JobMetrics) AddShuffleRead(wire int64, local bool) {
	m.ShuffleBytesRead.Add(wire)
	if local {
		m.LocalBytesRead.Add(wire)
	} else {
		m.RemoteBytesRead.Add(wire)
	}
}

// CombineRatio reports the map-side combiner's reduction factor
// (input records per output record); 1 means the combiner did nothing.
// The paper's Word Count analysis hinges on this aggregation component.
func (m *JobMetrics) CombineRatio() float64 {
	in, out := m.CombineInputRecords.Load(), m.CombineOutputRecs.Load()
	if out == 0 {
		return 1
	}
	return float64(in) / float64(out)
}

// Snapshot is a plain-value copy for reports.
type Snapshot struct {
	ShuffleBytesWritten    int64
	ShuffleRawBytesWritten int64
	ShuffleBytesRead       int64
	RemoteBytesRead        int64
	LocalBytesRead         int64
	SpillCount             int64
	SpillBytes             int64
	DiskBytesWritten       int64
	DiskBytesRead          int64
	TasksLaunched          int64
	Stages                 int64
	RecordsRead            int64
	RecordsWritten         int64
	CacheHits              int64
	CacheMisses            int64
	Recomputations         int64
	CombineRatio           float64
	SchedulingRounds       int64
}

// StageEvent is one stage-boundary observation: the stage's name and the
// job's cumulative counters at the moment the barrier (or phase end)
// passed. Engines emit one per completed stage via NotifyStage; the
// adaptive planner subscribes with SetStageObserver and compares the
// cumulative counters against its estimates to decide whether to re-plan
// the remaining stages.
type StageEvent struct {
	Name string
	Snap Snapshot
}

// SetStageObserver installs fn as the stage-boundary callback (nil removes
// it). At most one observer is active; engines call it synchronously from
// the driver goroutine at stage barriers, so fn may adjust configuration
// that later stages re-read.
func (m *JobMetrics) SetStageObserver(fn func(StageEvent)) {
	if fn == nil {
		m.stageObserver.Store((*stageObserverBox)(nil))
		return
	}
	m.stageObserver.Store(&stageObserverBox{fn: fn})
}

// NotifyStage reports a completed stage to the registered observer, if any.
// Cheap when no observer is installed.
func (m *JobMetrics) NotifyStage(name string) {
	box := m.stageObserver.Load()
	if box == nil || box.fn == nil {
		return
	}
	box.fn(StageEvent{Name: name, Snap: m.Snapshot()})
}

// stageObserverBox wraps the callback so atomic.Pointer has a concrete
// comparable element type.
type stageObserverBox struct{ fn func(StageEvent) }

// Snapshot captures the current counter values.
func (m *JobMetrics) Snapshot() Snapshot {
	return Snapshot{
		ShuffleBytesWritten:    m.ShuffleBytesWritten.Load(),
		ShuffleRawBytesWritten: m.ShuffleRawBytesWritten.Load(),
		ShuffleBytesRead:       m.ShuffleBytesRead.Load(),
		RemoteBytesRead:        m.RemoteBytesRead.Load(),
		LocalBytesRead:         m.LocalBytesRead.Load(),
		SpillCount:             m.SpillCount.Load(),
		SpillBytes:             m.SpillBytes.Load(),
		DiskBytesWritten:       m.DiskBytesWritten.Load(),
		DiskBytesRead:          m.DiskBytesRead.Load(),
		TasksLaunched:          m.TasksLaunched.Load(),
		Stages:                 m.Stages.Load(),
		RecordsRead:            m.RecordsRead.Load(),
		RecordsWritten:         m.RecordsWritten.Load(),
		CacheHits:              m.CacheHits.Load(),
		CacheMisses:            m.CacheMisses.Load(),
		Recomputations:         m.Recomputations.Load(),
		CombineRatio:           m.CombineRatio(),
		SchedulingRounds:       m.SchedulingRounds.Load(),
	}
}

package metrics

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// ResourceUsage aggregates cluster-mean resource series over one
// execution: the five panels of the paper's resource figures.
type ResourceUsage struct {
	CPUPercent  *stats.StepSeries // 0..100
	MemPercent  *stats.StepSeries // 0..100
	DiskUtil    *stats.StepSeries // 0..100
	DiskIOMiBps *stats.StepSeries
	NetIOMiBps  *stats.StepSeries
}

// Correlation binds an operator timeline to the resource usage recorded
// during the same execution — the paper's methodology artifact ("we plot
// the execution plan … and correlate it with the resource utilisation").
type Correlation struct {
	Framework string
	Workload  string
	TotalTime float64
	Timeline  *Timeline
	Usage     ResourceUsage
}

// Render produces the textual analogue of a paper resource figure: the
// operator spans on top, the usage sparklines below, over a shared time
// axis of `width` buckets.
func (c *Correlation) Render(width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (total execution is %.0f seconds)\n", c.header(), c.TotalTime)
	for _, s := range c.Timeline.Spans() {
		bar := spanBar(s, c.TotalTime, width)
		fmt.Fprintf(&b, "  %-44s |%s| %.1f..%.1fs\n", truncate(s.Label, 44), bar, s.Start, s.End)
	}
	rows := []struct {
		label string
		s     *stats.StepSeries
		hi    float64
	}{
		{"CPU %", c.Usage.CPUPercent, 100},
		{"Memory %", c.Usage.MemPercent, 100},
		{"Disk util %", c.Usage.DiskUtil, 100},
		{"I/O MiB/s", c.Usage.DiskIOMiBps, 0},
		{"Network MiB/s", c.Usage.NetIOMiBps, 0},
	}
	for _, r := range rows {
		if r.s == nil {
			continue
		}
		fmt.Fprintf(&b, "  %s\n", stats.UsageChart(r.label, r.s, c.TotalTime, width, r.hi))
	}
	return b.String()
}

func (c *Correlation) header() string {
	name := c.Framework
	if c.Workload != "" {
		name += "/" + c.Workload
	}
	return name
}

// spanBar draws one operator span over a width-bucket axis.
func spanBar(s Span, total float64, width int) string {
	if total <= 0 {
		total = 1
	}
	lo := int(s.Start / total * float64(width))
	hi := int(s.End / total * float64(width))
	if hi >= width {
		hi = width - 1
	}
	if lo > hi {
		lo = hi
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		switch {
		case i >= lo && i <= hi:
			b.WriteByte('=')
		default:
			b.WriteByte(' ')
		}
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

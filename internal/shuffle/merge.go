package shuffle

import "container/heap"

// mergeFanIn is how many sorted segments one merge pass consumes — Hadoop's
// io.sort.factor scaled to laptop segments. Above it, ParallelMerge splits
// the work into subtasks.
const mergeFanIn = 8

// Subtasker schedules intra-task parallel work pinned to a node.
// *cluster.Runtime implements it; the reduce-side merge uses it so wide
// merges run as parallel subtasks instead of one sequential pass.
type Subtasker interface {
	Subtasks(node int, fns []func() error) error
}

// Merge k-way merges sorted segments into one sorted stream with a min-heap
// over the segment heads, stable across segments (equal records drain in
// segment order) — O(records · log segments).
func Merge[R any](segs [][]R, less func(a, b R) bool) []R {
	segs = nonEmpty(segs)
	switch len(segs) {
	case 0:
		return nil
	case 1:
		return segs[0]
	}
	total := 0
	h := &mergeHeap[R]{segs: segs, less: less}
	for s, seg := range segs {
		total += len(seg)
		h.entries = append(h.entries, mergeEntry{seg: s})
	}
	heap.Init(h)
	out := make([]R, 0, total)
	for len(h.entries) > 0 {
		e := &h.entries[0]
		out = append(out, segs[e.seg][e.idx])
		e.idx++
		if e.idx >= len(segs[e.seg]) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}

// ParallelMerge merges many sorted segments through the runtime: segments
// are split into fan-in-sized groups merged by concurrent subtasks on the
// consuming task's node, then a final pass merges the group results. With a
// nil runtime or few segments it degrades to the sequential Merge.
func ParallelMerge[R any](rt Subtasker, node int, segs [][]R, less func(a, b R) bool) []R {
	segs = nonEmpty(segs)
	if rt == nil || len(segs) <= mergeFanIn {
		return Merge(segs, less)
	}
	groups := (len(segs) + mergeFanIn - 1) / mergeFanIn
	results := make([][]R, groups)
	fns := make([]func() error, groups)
	for g := 0; g < groups; g++ {
		g := g
		lo := g * mergeFanIn
		hi := lo + mergeFanIn
		if hi > len(segs) {
			hi = len(segs)
		}
		fns[g] = func() error {
			results[g] = Merge(segs[lo:hi], less)
			return nil
		}
	}
	if err := rt.Subtasks(node, fns); err != nil {
		// A rejected placement cannot happen for a node the task already
		// runs on; degrade to the sequential pass if it somehow does.
		return Merge(segs, less)
	}
	return Merge(results, less)
}

// Concat flattens segments in segment order (the merge of unordered runs).
func Concat[R any](segs [][]R) []R {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	out := make([]R, 0, total)
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

func nonEmpty[R any](segs [][]R) [][]R {
	out := segs[:0:0]
	for _, s := range segs {
		if len(s) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// mergeEntry is one segment's cursor on the merge heap.
type mergeEntry struct {
	seg int
	idx int
}

type mergeHeap[R any] struct {
	entries []mergeEntry
	segs    [][]R
	less    func(a, b R) bool
}

func (h *mergeHeap[R]) Len() int { return len(h.entries) }
func (h *mergeHeap[R]) Less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	ra, rb := h.segs[a.seg][a.idx], h.segs[b.seg][b.idx]
	if h.less(ra, rb) {
		return true
	}
	if h.less(rb, ra) {
		return false
	}
	// Equal records drain in segment order, keeping the merge stable.
	return a.seg < b.seg
}
func (h *mergeHeap[R]) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *mergeHeap[R]) Push(x any)    { h.entries = append(h.entries, x.(mergeEntry)) }
func (h *mergeHeap[R]) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}

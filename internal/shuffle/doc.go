// Package shuffle is the shared shuffle core under all three mini-engines:
// one Writer abstraction over the map/producer side of a repartitioning
// edge, two real strategies behind it, pluggable block compression, and the
// reduce-side merge helpers — so the paper's central lever (shuffle
// implementation) becomes a configuration axis instead of three divergent
// private code paths.
//
// # Strategies
//
//   - Hash: hash-bucketed repartition. Records are routed to their reduce
//     partition and serialized immediately into per-partition buffers;
//     buffers can flush downstream as they fill (pipelined exchange).
//     Map-side combining, when requested, runs in a hash table that drains
//     under memory pressure. This is Flink's pipelined repartition and
//     Spark's legacy hash shuffle manager.
//   - Sort: sort-based shuffle. Records are buffered and spilled as sorted,
//     combined runs whenever the host engine's memory grant is refused or
//     the spill threshold is reached; Close merges the runs into one final
//     segment per partition. With a record order (Spec.Less) this is
//     Hadoop's spill-and-merge pipeline; without one it degrades to
//     partition-id grouping only — exactly what Spark's tungsten-sort does
//     (it sorts on the partition-id prefix, never on the key).
//
// # Strategy matrix (engine × strategy)
//
//	engine     default  hash models                 sort models
//	spark      sort     spark.shuffle.manager=hash  tungsten-sort (partition-
//	                    (pre-1.2 hash shuffle)      prefix sort, heap-pressure
//	                                                spills; key-sorted for
//	                                                repartitionAndSort)
//	flink      hash     pipelined repartition with  sort-based exchange: keyed
//	                    bounded buffers and         edges buffer, spill sorted
//	                    backpressure (Flink 0.10)   runs and emit merged at
//	                                                end-of-input
//	mapreduce  sort     segments written unsorted,  classic Hadoop: sorted
//	                    reduce sorts after fetch    spills, merged segments,
//	                                                sort-merge reduce
//
// Every engine keeps its physical idiom as the default (core.ShuffleStrategy
// unset); setting shuffle.strategy=hash|sort forces the other implementation
// so strategies can be compared apples to apples on one engine — the ext6
// experiment sweeps exactly this axis against parallelism.
//
// # Compression and spilling
//
// core.ShuffleCompress selects block compression ("none" or the built-in
// "lz" codec); blocks carry a self-describing frame so readers reject
// corrupt input instead of mis-decoding it. core.ShuffleSpillThreshold caps
// the bytes a sort writer buffers before it spills a run, on top of the
// engine's own memory grant (Spark's shuffle heap fraction, Flink's managed
// segments, MapReduce's io.sort buffer).
//
// All byte accounting flows through metrics.JobMetrics with one shared rule
// (documented in internal/metrics): wire bytes written/read, raw bytes
// before compression, local vs remote classified by producer/consumer node.
//
// # Block ownership
//
// A shuffle block is no longer a bare []byte: Block pairs the payload with
// its byte accounting and an ownership bit, so the pooled-buffer recycling
// in internal/memory stays safe across engine boundaries. The contract:
//
//   - Writers emit sealed Blocks through Env.Emit. Emit TRANSFERS ownership:
//     after the call returns, the writer never touches the payload again.
//     Blocks sealed from pooled buffers (PooledBlock) carry release rights;
//     Blocks wrapping storage owned by someone else (OwnedBlock — e.g. a DFS
//     block or a retained map output) do not.
//   - Borrow returns a zero-copy view WITHOUT release rights — the local
//     fast path. CopyPooled clones into a fresh pooled buffer WITH release
//     rights — the remote path, which is also what keeps the local/remote
//     byte-accounting rule honest (remote reads really move bytes).
//   - Release returns a pooled payload to memory.DefaultPool and clears the
//     Block; on a borrowed or owned Block it is a safe no-op. Call it once,
//     after the last read. Every registered codec copies var-width payloads
//     on Decode, so releasing right after DecodeBlocks/DecodeAll is safe.
//
// Per engine: spark's shuffle service retains emitted blocks forever (lineage
// retries) and never releases; fetches borrow locally and copy remotely, and
// the reader releases after decode. Flink's exchanges ship Blocks inside
// Packets over the bounded channels; the consumer releases after decoding —
// including on the error/drain paths. MapReduce writes emitted blocks to the
// DFS (which retains sub-slices by reference, so no release) and reduce reads
// borrow a local single-block segment zero-copy via dfs.File.Contiguous,
// copying into a pooled buffer otherwise.
package shuffle

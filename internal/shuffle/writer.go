package shuffle

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/memory"
	"repro/internal/serde"
)

// --- hash strategy ----------------------------------------------------------

// hashWriter is the bucketed repartition: records are serialized into
// per-partition buffers as they arrive and can flush downstream before
// end-of-input (the pipelined exchange). Map-side combining runs in a hash
// table that drains into the buckets when the memory grant is refused.
type hashWriter[R any] struct {
	spec Spec[R]
	env  Env

	bufs [][]byte
	recs []int64

	groups  map[uint64][]R // combine table, bucketed by key hash
	keys    int            // distinct keys since the last memory check
	granted int64
	inRecs  int64
	outRecs int64
}

func newHashWriter[R any](spec Spec[R], env Env) *hashWriter[R] {
	w := &hashWriter[R]{
		spec: spec,
		env:  env,
		bufs: make([][]byte, spec.NumParts),
		recs: make([]int64, spec.NumParts),
	}
	if spec.combining() {
		w.groups = make(map[uint64][]R)
	}
	return w
}

// Write implements Writer.
func (w *hashWriter[R]) Write(rec R) error {
	if w.groups == nil {
		_, err := w.emit(rec)
		return err
	}
	w.inRecs++
	h := w.spec.Hash(rec)
	g := w.groups[h]
	if w.spec.Merge != nil {
		for i := range g {
			if w.spec.Same(g[i], rec) {
				g[i] = w.spec.Merge(g[i], rec)
				return nil
			}
		}
	}
	w.groups[h] = append(g, rec)
	w.keys++
	if w.keys%memCheckEvery == 0 && w.env.Mem != nil {
		if w.env.Mem(memQuantum) {
			w.granted += memQuantum
		} else if err := w.drain(true); err != nil {
			return err
		}
	}
	return nil
}

// WriteBatch implements Writer. The combining path still inserts record by
// record (the table lookup is inherently per key), but the plain bucketed
// path serializes the whole batch with the pipelined-flush check hoisted
// out of the record loop — one threshold scan per batch instead of one
// per record.
func (w *hashWriter[R]) WriteBatch(recs []R) error {
	if w.groups != nil {
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		return nil
	}
	for _, rec := range recs {
		p := w.spec.Route(rec)
		if p < 0 || p >= w.spec.NumParts {
			return fmt.Errorf("shuffle: record routed to partition %d of %d", p, w.spec.NumParts)
		}
		if w.bufs[p] == nil {
			w.bufs[p] = memory.DefaultPool.Get(memQuantum)
		}
		w.bufs[p] = serde.Append(w.spec.Codec, w.bufs[p], rec)
		w.recs[p]++
	}
	if w.env.Settings.FlushBytes > 0 {
		for p := range w.bufs {
			if int64(len(w.bufs[p])) >= w.env.Settings.FlushBytes {
				if err := w.flush(p); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// drain empties the combine table into the buckets; spilled marks a
// memory-pressure drain (counted as a spill, like the tungsten aggregation
// map falling back to its buckets).
func (w *hashWriter[R]) drain(spilled bool) error {
	if len(w.groups) == 0 {
		return nil
	}
	var bytes int64
	var out int64
	for _, g := range w.groups {
		run := g
		if w.spec.Merge == nil {
			// g is one hash bucket already; only colliding keys compare.
			run = combineAdjacent(groupSameAdjacent(g, w.spec.Same), w.spec)
		}
		for _, rec := range run {
			n, err := w.emit(rec)
			if err != nil {
				return err
			}
			bytes += int64(n)
			out++
		}
	}
	w.groups = make(map[uint64][]R)
	w.keys = 0
	w.outRecs += out
	if spilled && w.env.Metrics != nil {
		w.env.Metrics.SpillCount.Add(1)
		w.env.Metrics.SpillBytes.Add(bytes)
	}
	return nil
}

// emit serializes one outgoing record into its bucket, flushing downstream
// when the pipelined threshold is reached. It returns the encoded size.
func (w *hashWriter[R]) emit(rec R) (int, error) {
	p := w.spec.Route(rec)
	if p < 0 || p >= w.spec.NumParts {
		return 0, fmt.Errorf("shuffle: record routed to partition %d of %d", p, w.spec.NumParts)
	}
	if w.bufs[p] == nil {
		w.bufs[p] = memory.DefaultPool.Get(memQuantum)
	}
	before := len(w.bufs[p])
	w.bufs[p] = serde.Append(w.spec.Codec, w.bufs[p], rec)
	w.recs[p]++
	added := len(w.bufs[p]) - before
	if w.env.Settings.FlushBytes > 0 && int64(len(w.bufs[p])) >= w.env.Settings.FlushBytes {
		return added, w.flush(p)
	}
	return added, nil
}

// flush seals one bucket, sends it downstream (ownership transfers to the
// Emit receiver) and resets the bucket.
func (w *hashWriter[R]) flush(p int) error {
	raw := w.bufs[p]
	if len(raw) == 0 {
		return nil
	}
	b := seal(w.env.Settings, raw, w.recs[p])
	w.bufs[p] = nil
	w.recs[p] = 0
	return w.env.Emit(p, b)
}

// Close implements Writer: drain the combine table, emit one final block
// per partition (empty ones included) and release granted memory.
func (w *hashWriter[R]) Close() error {
	if w.groups != nil {
		if err := w.drain(false); err != nil {
			return err
		}
		if w.env.Metrics != nil {
			w.env.Metrics.CombineInputRecords.Add(w.inRecs)
			w.env.Metrics.CombineOutputRecs.Add(w.outRecs)
		}
	}
	for p := range w.bufs {
		b := seal(w.env.Settings, w.bufs[p], w.recs[p])
		w.bufs[p] = nil
		w.recs[p] = 0
		if err := w.env.Emit(p, b); err != nil {
			return err
		}
	}
	w.release()
	return nil
}

func (w *hashWriter[R]) release() {
	if w.granted > 0 && w.env.Free != nil {
		w.env.Free(w.granted)
		w.granted = 0
	}
}

// --- sort strategy ----------------------------------------------------------

// runSeg is one partition's slice of one spilled run: either resident bytes
// or a SpillStore handle.
type runSeg struct {
	data   []byte
	handle string
	recs   int64
}

// sortWriter is the spill-and-merge shuffle: records buffer until the
// memory grant is refused or a threshold trips, then spill as a partitioned
// (and, with Less, sorted and combined) run; Close merges every run into
// one final segment per partition.
type sortWriter[R any] struct {
	spec Spec[R]
	env  Env

	buf         []R
	runs        [][]runSeg // runs[i][part]
	granted     int64
	bytesPerRec float64 // running encoded-size estimate for SpillBytes
	spilledRecs int64
	spilledByte int64
}

func newSortWriter[R any](spec Spec[R], env Env) *sortWriter[R] {
	return &sortWriter[R]{spec: spec, env: env, bytesPerRec: 64}
}

// Write implements Writer. Route validation happens in cut (the one place
// Route must run anyway), so the buffering fast path is a plain append plus
// threshold checks.
func (w *sortWriter[R]) Write(rec R) error {
	w.buf = append(w.buf, rec)
	return w.check(len(w.buf) - 1)
}

// WriteBatch implements Writer: the whole batch appends in one copy and the
// spill/memory thresholds are consulted once, at batch granularity.
func (w *sortWriter[R]) WriteBatch(recs []R) error {
	before := len(w.buf)
	w.buf = append(w.buf, recs...)
	return w.check(before)
}

// check applies the spill and memory-pressure thresholds after the buffer
// grew from `before` records to its current length. Memory is granted one
// quantum per memCheckEvery records crossed, matching the per-record path.
func (w *sortWriter[R]) check(before int) error {
	n := len(w.buf)
	set := w.env.Settings
	if set.SpillRecs > 0 && n >= set.SpillRecs {
		return w.spill()
	}
	if set.SpillBytes > 0 && int64(float64(n)*w.bytesPerRec) >= set.SpillBytes {
		return w.spill()
	}
	if w.env.Mem != nil {
		for crossed := n/memCheckEvery - before/memCheckEvery; crossed > 0; crossed-- {
			if w.env.Mem(memQuantum) {
				w.granted += memQuantum
			} else {
				return w.spill()
			}
		}
	}
	return nil
}

// cut partitions, orders and combines the buffered records, returning one
// record slice per partition (the in-memory form of a run). A record routed
// outside [0, NumParts) surfaces here as an error.
func (w *sortWriter[R]) cut() ([][]R, error) {
	parts := make([][]R, w.spec.NumParts)
	for _, rec := range w.buf {
		p := w.spec.Route(rec)
		if p < 0 || p >= w.spec.NumParts {
			return nil, fmt.Errorf("shuffle: record routed to partition %d of %d", p, w.spec.NumParts)
		}
		parts[p] = append(parts[p], rec)
	}
	for p, part := range parts {
		if w.spec.Less != nil {
			if w.spec.NormKey != nil {
				SortByNormKey(part, w.spec.NormKey)
			} else {
				sort.SliceStable(part, func(i, j int) bool { return w.spec.Less(part[i], part[j]) })
			}
		} else if w.spec.combining() {
			part = groupFirstSeen(part, w.spec)
		}
		parts[p] = w.combine(part)
	}
	w.buf = w.buf[:0]
	return parts, nil
}

// combine folds a partition slice whose equal keys are adjacent, counting
// the reduction like the engines' combiners do.
func (w *sortWriter[R]) combine(part []R) []R {
	if !w.spec.combining() || len(part) == 0 {
		return part
	}
	in := len(part)
	part = combineAdjacent(part, w.spec)
	if w.env.Metrics != nil {
		w.env.Metrics.CombineInputRecords.Add(int64(in))
		w.env.Metrics.CombineOutputRecs.Add(int64(len(part)))
	}
	return part
}

// spill materializes the current buffer as one run.
func (w *sortWriter[R]) spill() error {
	if len(w.buf) == 0 {
		return nil
	}
	parts, err := w.cut()
	if err != nil {
		return err
	}
	run := make([]runSeg, w.spec.NumParts)
	var runBytes, runRecs int64
	for p, part := range parts {
		enc := serde.EncodeAll(w.spec.Codec, nil, part)
		seg := runSeg{recs: int64(len(part))}
		if w.env.Spill != nil && len(enc) > 0 {
			h, err := w.env.Spill.Write(len(w.runs), p, enc)
			if err != nil {
				return err
			}
			seg.handle = h
		} else {
			seg.data = enc
		}
		run[p] = seg
		runBytes += int64(len(enc))
		runRecs += int64(len(part))
	}
	w.runs = append(w.runs, run)
	w.spilledByte += runBytes
	w.spilledRecs += runRecs
	if w.spilledRecs > 0 {
		w.bytesPerRec = float64(w.spilledByte) / float64(w.spilledRecs)
	}
	if w.env.Metrics != nil {
		w.env.Metrics.SpillCount.Add(1)
		w.env.Metrics.SpillBytes.Add(runBytes)
	}
	return nil
}

// Close implements Writer: merge the spilled runs with the in-memory tail
// and emit one final block per partition.
func (w *sortWriter[R]) Close() error {
	tail, err := w.cut()
	if err != nil {
		return err
	}
	for p := 0; p < w.spec.NumParts; p++ {
		var segs [][]R
		for _, run := range w.runs {
			seg := run[p]
			data := seg.data
			if seg.handle != "" {
				var err error
				data, err = w.env.Spill.Read(seg.handle)
				if err != nil {
					return err
				}
			}
			if len(data) == 0 {
				continue
			}
			recs, err := serde.DecodeAll(w.spec.Codec, data)
			if err != nil {
				return err
			}
			segs = append(segs, recs)
		}
		if len(tail[p]) > 0 {
			segs = append(segs, tail[p])
		}
		var final []R
		switch {
		case len(segs) == 1:
			final = segs[0]
		case w.spec.Less != nil:
			// Sorted runs merge like Hadoop's loser tree, with the
			// combiner re-applied across runs.
			final = w.combine(Merge(segs, w.spec.Less))
		default:
			// No record order: runs concatenate in spill order
			// (tungsten's partition-prefix sort never orders keys).
			final = Concat(segs)
		}
		enc := serde.EncodeAll(w.spec.Codec, memory.DefaultPool.Get(memQuantum), final)
		if err := w.env.Emit(p, seal(w.env.Settings, enc, int64(len(final)))); err != nil {
			return err
		}
	}
	if w.env.Spill != nil {
		for _, run := range w.runs {
			for _, seg := range run {
				if seg.handle != "" {
					w.env.Spill.Remove(seg.handle)
				}
			}
		}
	}
	w.runs = nil
	if w.granted > 0 && w.env.Free != nil {
		w.env.Free(w.granted)
		w.granted = 0
	}
	return nil
}

// SortByNormKey orders a run by memcmp over packed normalized keys: one
// pass extracts every record's key into a single pooled buffer, an index
// permutation sorts by bytes.Compare (ties keep arrival order, matching
// sort.SliceStable under Less), and the records are permuted once at the
// end. No Less calls, no per-comparison decoding. The key writer must be
// TOTAL and agree with the Less the caller would otherwise sort with —
// serde.NormKeyerFor builds conforming writers for ordered scalar keys.
func SortByNormKey[R any](part []R, key func(v R, dst []byte) []byte) {
	if len(part) < 2 {
		return
	}
	buf := memory.DefaultPool.Get(len(part) * 16)
	offs := make([]int32, len(part)+1)
	for i, rec := range part {
		buf = key(rec, buf)
		offs[i+1] = int32(len(buf))
	}
	idx := make([]int32, len(part))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if c := bytes.Compare(buf[offs[i]:offs[i+1]], buf[offs[j]:offs[j+1]]); c != 0 {
			return c < 0
		}
		return i < j // stability: equal keys keep arrival order
	})
	out := make([]R, len(part))
	for pos, i := range idx {
		out[pos] = part[i]
	}
	copy(part, out)
	memory.DefaultPool.Put(buf)
}

// --- shared combine helpers -------------------------------------------------

// groupFirstSeen reorders records so equal keys (per Same) are adjacent,
// keeping hash buckets in first-seen order and records in arrival order —
// the adjacency CombineRun and combineAdjacent need when no order exists.
// Records bucket by Hash first, so the pairwise Same scan only runs inside
// a bucket: expected O(n) over the partition, not O(n²).
func groupFirstSeen[R any](recs []R, spec Spec[R]) []R {
	if len(recs) < 2 {
		return recs
	}
	order := make([]uint64, 0, len(recs))
	buckets := make(map[uint64][]R, len(recs))
	for _, rec := range recs {
		h := spec.Hash(rec)
		g, ok := buckets[h]
		if !ok {
			order = append(order, h)
		}
		buckets[h] = append(g, rec)
	}
	out := make([]R, 0, len(recs))
	for _, h := range order {
		out = append(out, groupSameAdjacent(buckets[h], spec.Same)...)
	}
	return out
}

// groupSameAdjacent is the pairwise grouping behind groupFirstSeen, run on
// one hash bucket, where only colliding keys ever compare.
func groupSameAdjacent[R any](recs []R, same func(a, b R) bool) []R {
	if len(recs) < 2 {
		return recs
	}
	out := make([]R, 0, len(recs))
	used := make([]bool, len(recs))
	for i := range recs {
		if used[i] {
			continue
		}
		out = append(out, recs[i])
		for j := i + 1; j < len(recs); j++ {
			if !used[j] && same(recs[i], recs[j]) {
				out = append(out, recs[j])
				used[j] = true
			}
		}
	}
	return out
}

// combineAdjacent folds runs of equal keys (which must already be
// adjacent): pairwise with Merge, or through CombineRun.
func combineAdjacent[R any](part []R, spec Spec[R]) []R {
	if len(part) == 0 {
		return part
	}
	if spec.Merge != nil {
		out := part[:0:0]
		acc := part[0]
		for _, rec := range part[1:] {
			if spec.Same(acc, rec) {
				acc = spec.Merge(acc, rec)
				continue
			}
			out = append(out, acc)
			acc = rec
		}
		return append(out, acc)
	}
	if spec.CombineRun != nil {
		return spec.CombineRun(part)
	}
	return part
}

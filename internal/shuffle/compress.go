package shuffle

import (
	"encoding/binary"
	"fmt"
)

// Compressor is the pluggable block codec. Implementations must be
// deterministic and self-contained (the container ships no compression
// libraries); blocks are framed by Pack/Unpack so a reader can verify what
// it is decoding.
type Compressor interface {
	Name() string
	Compress(src []byte) []byte
	Decompress(src []byte, rawLen int) ([]byte, error)
}

// CompressorFor maps a core.ShuffleCompress value to a codec: "lz" (and the
// alias "true") selects the built-in LZ codec; everything else disables
// compression.
func CompressorFor(name string) Compressor {
	switch name {
	case "lz", "true":
		return lzCodec{}
	default:
		return nil
	}
}

// Frame tags: a packed block starts with one tag byte and the uvarint raw
// length, then the payload.
const (
	frameStored byte = 0 // payload is the raw bytes (compression not worth it)
	frameLZ     byte = 1 // payload is LZ-compressed
)

// Pack produces a block's wire form. Without a codec the raw bytes pass
// through unframed (byte-compatible with the pre-subsystem engines); with
// one, the smaller of stored/compressed is framed.
func Pack(set Settings, raw []byte) []byte {
	if set.Compress == nil {
		return raw
	}
	hdr := make([]byte, 1, 1+binary.MaxVarintLen64+len(raw))
	hdr = binary.AppendUvarint(hdr, uint64(len(raw)))
	if comp := set.Compress.Compress(raw); len(comp) < len(raw) {
		hdr[0] = frameLZ
		return append(hdr, comp...)
	}
	hdr[0] = frameStored
	return append(hdr, raw...)
}

// Unpack recovers a block's raw bytes. It must run with the same Settings
// that packed the block (both sides of an edge share one resolved config).
func Unpack(set Settings, data []byte) ([]byte, error) {
	if set.Compress == nil {
		return data, nil
	}
	if len(data) == 0 {
		return nil, nil
	}
	tag := data[0]
	rawLen, n := binary.Uvarint(data[1:])
	if n <= 0 {
		return nil, fmt.Errorf("shuffle: corrupt block frame")
	}
	payload := data[1+n:]
	switch tag {
	case frameStored:
		if uint64(len(payload)) != rawLen {
			return nil, fmt.Errorf("shuffle: stored block is %d bytes, frame says %d", len(payload), rawLen)
		}
		return payload, nil
	case frameLZ:
		return set.Compress.Decompress(payload, int(rawLen))
	default:
		return nil, fmt.Errorf("shuffle: unknown block frame tag %d", tag)
	}
}

// lzCodec is a dependency-free byte-oriented LZ77 codec in the LZ4 family:
// greedy 4-byte matches against a 64 KB window, encoded as literal-run and
// match tokens. It is built for shuffle blocks — runs of serialized records
// with heavy key/prefix repetition — not for general-purpose archiving.
//
// Token format (one control byte each):
//
//	0x00..0x7F: literal run of (ctrl + 1) bytes, which follow directly
//	0x80..0xFF: match of (ctrl - 0x80 + minMatch) bytes at the 16-bit
//	            little-endian offset that follows (1-based, ≤ 64 KB back)
type lzCodec struct{}

const (
	lzMinMatch  = 4
	lzMaxMatch  = lzMinMatch + 0x7F
	lzMaxLit    = 0x80
	lzWindow    = 1 << 16
	lzHashBits  = 14
	lzHashShift = 32 - lzHashBits
)

func (lzCodec) Name() string { return "lz" }

func lzHash(v uint32) uint32 { return (v * 2654435761) >> lzHashShift }

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// Compress implements Compressor.
func (lzCodec) Compress(src []byte) []byte {
	out := make([]byte, 0, len(src)/2+16)
	var table [1 << lzHashBits]int // candidate position + 1 (0 = empty)
	litStart := 0
	i := 0
	flushLits := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > lzMaxLit {
				n = lzMaxLit
			}
			out = append(out, byte(n-1))
			out = append(out, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	for i+lzMinMatch <= len(src) {
		h := lzHash(load32(src, i))
		cand := int(table[h]) - 1
		table[h] = i + 1
		if cand >= 0 && i-cand < lzWindow && load32(src, cand) == load32(src, i) {
			// Extend the match.
			length := lzMinMatch
			for i+length < len(src) && length < lzMaxMatch && src[cand+length] == src[i+length] {
				length++
			}
			flushLits(i)
			off := i - cand
			out = append(out, byte(0x80+length-lzMinMatch), byte(off), byte(off>>8))
			i += length
			litStart = i
			continue
		}
		i++
	}
	flushLits(len(src))
	return out
}

// Decompress implements Compressor.
func (lzCodec) Decompress(src []byte, rawLen int) ([]byte, error) {
	if rawLen < 0 {
		return nil, fmt.Errorf("shuffle: negative raw length")
	}
	out := make([]byte, 0, rawLen)
	i := 0
	for i < len(src) {
		ctrl := src[i]
		i++
		if ctrl < 0x80 {
			n := int(ctrl) + 1
			if i+n > len(src) {
				return nil, fmt.Errorf("shuffle: truncated literal run")
			}
			out = append(out, src[i:i+n]...)
			i += n
			continue
		}
		if i+2 > len(src) {
			return nil, fmt.Errorf("shuffle: truncated match token")
		}
		length := int(ctrl-0x80) + lzMinMatch
		off := int(src[i]) | int(src[i+1])<<8
		i += 2
		if off == 0 || off > len(out) {
			return nil, fmt.Errorf("shuffle: match offset %d outside %d decoded bytes", off, len(out))
		}
		// Byte-at-a-time copy: matches may overlap their own output.
		for j := 0; j < length; j++ {
			out = append(out, out[len(out)-off])
		}
	}
	if len(out) != rawLen {
		return nil, fmt.Errorf("shuffle: decompressed %d bytes, frame says %d", len(out), rawLen)
	}
	return out, nil
}

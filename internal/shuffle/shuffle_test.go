package shuffle

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/serde"
)

// pairSpec is the canonical word-count-shaped edge used by most tests.
func pairSpec(parts int, combine bool) Spec[core.Pair[string, int64]] {
	s := Spec[core.Pair[string, int64]]{
		NumParts: parts,
		Codec:    serde.OfPair[string, int64](serde.TypeInfo),
		Route: func(p core.Pair[string, int64]) int {
			return int(core.HashKey(p.Key) % uint64(parts))
		},
		Less: func(a, b core.Pair[string, int64]) bool { return a.Key < b.Key },
		Same: func(a, b core.Pair[string, int64]) bool { return a.Key == b.Key },
		Hash: func(p core.Pair[string, int64]) uint64 { return core.HashKey(p.Key) },
	}
	if combine {
		s.Merge = func(a, b core.Pair[string, int64]) core.Pair[string, int64] {
			return core.KV(a.Key, a.Value+b.Value)
		}
	}
	return s
}

// collectBlocks runs records through a writer and returns the final block
// per partition plus any pipelined flushes, decoded.
func runWriter(t *testing.T, spec Spec[core.Pair[string, int64]], env Env,
	recs []core.Pair[string, int64]) map[string]int64 {
	t.Helper()
	blocks := make(map[int][]Block)
	if env.Emit == nil {
		env.Emit = func(part int, b Block) error {
			blocks[part] = append(blocks[part], b)
			return nil
		}
	}
	w := NewWriter(spec, env)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	totals := map[string]int64{}
	for part, bs := range blocks {
		decoded, err := DecodeBlocks(env.Settings, spec.Codec, bs)
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range decoded {
			for _, kv := range seg {
				totals[kv.Key] += kv.Value
				if got := spec.Route(kv); got != part {
					t.Errorf("record %q landed in partition %d, routed to %d", kv.Key, part, got)
				}
			}
		}
	}
	return totals
}

func wordRecords(n int) ([]core.Pair[string, int64], map[string]int64) {
	rng := rand.New(rand.NewSource(7))
	recs := make([]core.Pair[string, int64], n)
	want := map[string]int64{}
	for i := range recs {
		w := fmt.Sprintf("word%03d", rng.Intn(200))
		recs[i] = core.KV(w, int64(1))
		want[w]++
	}
	return recs, want
}

func TestWriterStrategiesAgree(t *testing.T) {
	recs, want := wordRecords(5000)
	for _, kind := range []Kind{Hash, Sort} {
		for _, combine := range []bool{true, false} {
			name := fmt.Sprintf("%v/combine=%v", kind, combine)
			m := &metrics.JobMetrics{}
			got := runWriter(t, pairSpec(4, combine),
				Env{Settings: Settings{Kind: kind}, Metrics: m}, recs)
			if len(got) != len(want) {
				t.Fatalf("%s: %d distinct keys, want %d", name, len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Errorf("%s: count[%s] = %d, want %d", name, k, got[k], v)
				}
			}
			if combine && m.CombineRatio() <= 1 {
				t.Errorf("%s: combine ratio %.2f, want > 1", name, m.CombineRatio())
			}
		}
	}
}

func TestSortWriterBlocksAreKeySorted(t *testing.T) {
	recs, _ := wordRecords(3000)
	spec := pairSpec(3, true)
	set := Settings{Kind: Sort, SpillRecs: 500}
	m := &metrics.JobMetrics{}
	blocks := map[int]Block{}
	w := NewWriter(spec, Env{Settings: set, Metrics: m, Emit: func(part int, b Block) error {
		blocks[part] = b
		return nil
	}})
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if m.SpillCount.Load() == 0 {
		t.Error("no spills despite a 500-record threshold over 3000 records")
	}
	for part, blk := range blocks {
		seg, err := DecodeBlocks(set, spec.Codec, []Block{blk})
		if err != nil {
			t.Fatal(err)
		}
		if !sort.SliceIsSorted(seg[0], func(i, j int) bool { return seg[0][i].Key < seg[0][j].Key }) {
			t.Errorf("partition %d block not key-sorted", part)
		}
		// Runs were merged and recombined: each key appears once.
		seen := map[string]bool{}
		for _, kv := range seg[0] {
			if seen[kv.Key] {
				t.Errorf("partition %d: key %q appears twice after merge-combine", part, kv.Key)
			}
			seen[kv.Key] = true
		}
	}
}

func TestSortWriterSpillsOnMemoryPressure(t *testing.T) {
	recs, want := wordRecords(8000)
	m := &metrics.JobMetrics{}
	granted, freed := int64(0), int64(0)
	var denies int
	env := Env{
		Settings: Settings{Kind: Sort},
		Metrics:  m,
		Mem: func(n int64) bool {
			if granted >= 2*memQuantum {
				denies++
				return false
			}
			granted += n
			return true
		},
		Free: func(n int64) { freed += n },
	}
	got := runWriter(t, pairSpec(2, false), env, recs)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
	if denies == 0 || m.SpillCount.Load() == 0 {
		t.Errorf("denies=%d spills=%d, want both > 0", denies, m.SpillCount.Load())
	}
	if freed != granted {
		t.Errorf("freed %d of %d granted bytes", freed, granted)
	}
}

func TestHashWriterPipelinedFlush(t *testing.T) {
	recs, want := wordRecords(4000)
	flushes := 0
	blocks := make(map[int][]Block)
	set := Settings{Kind: Hash, FlushBytes: 512}
	env := Env{Settings: set, Emit: func(part int, b Block) error {
		flushes++
		blocks[part] = append(blocks[part], b)
		return nil
	}}
	spec := pairSpec(2, false)
	w := NewWriter(spec, env)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, bs := range blocks {
		decoded, err := DecodeBlocks(set, spec.Codec, bs)
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range decoded {
			for _, kv := range seg {
				got[kv.Key] += kv.Value
			}
		}
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
	if flushes <= spec.NumParts {
		t.Errorf("%d emits for 4000 records with a 512B flush threshold — not pipelined", flushes)
	}
}

func TestWriterEmitsEmptyPartitionsAtClose(t *testing.T) {
	for _, kind := range []Kind{Hash, Sort} {
		emitted := map[int]int{}
		env := Env{Settings: Settings{Kind: kind}, Emit: func(part int, b Block) error {
			emitted[part]++
			return nil
		}}
		w := NewWriter(pairSpec(4, false), env)
		if err := w.Write(core.KV("only", int64(1))); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 4; p++ {
			if emitted[p] == 0 {
				t.Errorf("%v: partition %d got no Close block", kind, p)
			}
		}
	}
}

// TestWriterRejectsBadRoute: an out-of-range route must surface as an
// error by Close at the latest (the sort writer defers Route to cut, so
// Write itself stays a plain append).
func TestWriterRejectsBadRoute(t *testing.T) {
	for _, kind := range []Kind{Hash, Sort} {
		spec := pairSpec(2, false)
		spec.Route = func(core.Pair[string, int64]) int { return 7 }
		env := Env{Settings: Settings{Kind: kind}, Emit: func(int, Block) error { return nil }}
		w := NewWriter(spec, env)
		err := w.Write(core.KV("x", int64(1)))
		if err == nil {
			err = w.Close()
		}
		if err == nil {
			t.Errorf("%v: out-of-range route accepted", kind)
		}
		w = NewWriter(spec, env)
		err = w.WriteBatch([]core.Pair[string, int64]{core.KV("x", int64(1))})
		if err == nil {
			err = w.Close()
		}
		if err == nil {
			t.Errorf("%v: out-of-range batch route accepted", kind)
		}
	}
}

// memStore is a SpillStore double that tracks lifecycle.
type memStore struct {
	m       map[string][]byte
	writes  int
	removes int
}

func (s *memStore) Write(run, part int, data []byte) (string, error) {
	if s.m == nil {
		s.m = map[string][]byte{}
	}
	h := fmt.Sprintf("run%d-p%d", run, part)
	s.m[h] = data
	s.writes++
	return h, nil
}
func (s *memStore) Read(h string) ([]byte, error) {
	d, ok := s.m[h]
	if !ok {
		return nil, fmt.Errorf("missing %s", h)
	}
	return d, nil
}
func (s *memStore) Remove(h string) { delete(s.m, h); s.removes++ }

func TestSortWriterSpillStoreLifecycle(t *testing.T) {
	recs, want := wordRecords(4000)
	store := &memStore{}
	env := Env{Settings: Settings{Kind: Sort, SpillRecs: 700}, Metrics: &metrics.JobMetrics{}, Spill: store}
	got := runWriter(t, pairSpec(2, true), env, recs)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
	if store.writes == 0 {
		t.Fatal("spill store never used")
	}
	if store.removes != store.writes {
		t.Errorf("%d of %d spill segments removed after Close", store.removes, store.writes)
	}
	if len(store.m) != 0 {
		t.Errorf("%d spill segments leaked after Close", len(store.m))
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	set := Settings{Compress: CompressorFor("lz")}
	samples := [][]byte{
		nil,
		[]byte("a"),
		bytes.Repeat([]byte("the quick brown fox "), 500),
		[]byte{0, 1, 2, 3, 255, 254, 0, 0, 0, 7},
	}
	rng := rand.New(rand.NewSource(3))
	random := make([]byte, 4096)
	rng.Read(random)
	samples = append(samples, random)
	for i, raw := range samples {
		packed := Pack(set, raw)
		back, err := Unpack(set, packed)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if !bytes.Equal(back, raw) {
			t.Errorf("sample %d: round trip mismatch", i)
		}
	}
	// Repetitive data must actually shrink.
	rep := bytes.Repeat([]byte("wordcount "), 1000)
	if packed := Pack(set, rep); len(packed) >= len(rep) {
		t.Errorf("repetitive 10KB block packed to %d bytes", len(packed))
	}
	// No codec: bytes pass through untouched.
	if got := Pack(Settings{}, rep); &got[0] != &rep[0] {
		t.Error("Pack without codec copied the block")
	}
}

func TestUnpackRejectsCorruptFrames(t *testing.T) {
	set := Settings{Compress: CompressorFor("lz")}
	packed := Pack(set, bytes.Repeat([]byte("abc"), 100))
	for _, corrupt := range [][]byte{
		{99, 1, 2}, // unknown tag
		packed[:1], // truncated varint
		packed[:len(packed)/2],
	} {
		if _, err := Unpack(set, corrupt); err == nil {
			t.Errorf("corrupt frame %v... accepted", corrupt[:min(3, len(corrupt))])
		}
	}
}

func TestMergeStableAndSorted(t *testing.T) {
	segs := [][]core.Pair[string, int64]{
		{core.KV("a", int64(1)), core.KV("c", int64(1)), core.KV("e", int64(1))},
		{core.KV("a", int64(2)), core.KV("b", int64(2))},
		nil,
		{core.KV("b", int64(3)), core.KV("e", int64(3))},
	}
	less := func(a, b core.Pair[string, int64]) bool { return a.Key < b.Key }
	got := Merge(segs, less)
	want := []core.Pair[string, int64]{
		core.KV("a", int64(1)), core.KV("a", int64(2)),
		core.KV("b", int64(2)), core.KV("b", int64(3)),
		core.KV("c", int64(1)),
		core.KV("e", int64(1)), core.KV("e", int64(3)),
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Merge = %v, want %v", got, want)
	}
}

// seqSubtasker runs subtasks inline, recording the calls.
type seqSubtasker struct{ calls, fns int }

func (s *seqSubtasker) Subtasks(node int, fns []func() error) error {
	s.calls++
	s.fns += len(fns)
	for _, fn := range fns {
		if err := fn(); err != nil {
			return err
		}
	}
	return nil
}

func TestParallelMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var segs [][]int
	total := 0
	for s := 0; s < 30; s++ {
		n := rng.Intn(50)
		seg := make([]int, n)
		for i := range seg {
			seg[i] = rng.Intn(1000)
		}
		sort.Ints(seg)
		segs = append(segs, seg)
		total += n
	}
	less := func(a, b int) bool { return a < b }
	ex := &seqSubtasker{}
	got := ParallelMerge(ex, 0, segs, less)
	if len(got) != total {
		t.Fatalf("merged %d records, want %d", len(got), total)
	}
	if !sort.IntsAreSorted(got) {
		t.Error("parallel merge output not sorted")
	}
	if ex.calls == 0 || ex.fns == 0 {
		t.Error("30 segments merged without subtasks")
	}
	if seq := Merge(segs, less); fmt.Sprint(seq) != fmt.Sprint(got) {
		t.Error("parallel and sequential merges disagree")
	}
}

func TestFoldFirstSeen(t *testing.T) {
	segs := [][]core.Pair[string, int64]{
		{core.KV("b", int64(1)), core.KV("a", int64(1))},
		{core.KV("a", int64(2)), core.KV("c", int64(5))},
	}
	got := FoldFirstSeen(segs, func(a, b int64) int64 { return a + b })
	want := []core.Pair[string, int64]{
		core.KV("b", int64(1)), core.KV("a", int64(3)), core.KV("c", int64(5)),
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("FoldFirstSeen = %v, want %v", got, want)
	}
}

func TestFromConf(t *testing.T) {
	conf := core.NewConfig()
	set := FromConf(conf, Hash)
	if set.Kind != Hash || set.Compress != nil || set.SpillBytes != 0 {
		t.Errorf("defaults not preserved: %+v", set)
	}
	conf.Set(core.ShuffleStrategy, "sort").
		Set(core.ShuffleCompress, "lz").
		SetBytes(core.ShuffleSpillThreshold, 64*core.KB)
	set = FromConf(conf, Hash)
	if set.Kind != Sort || set.Compress == nil || set.SpillBytes != 64*1024 {
		t.Errorf("conf not applied: %+v", set)
	}
	if ParseKind("bogus", Sort) != Sort {
		t.Error("unknown strategy should keep the default")
	}
}

// TestWriteBatchMatchesWrite pins the vectorized emit contract: feeding
// records through WriteBatch must leave the same per-partition wire bytes
// as writing them one at a time, for every strategy × combine setting and
// across odd batch widths.
func TestWriteBatchMatchesWrite(t *testing.T) {
	recs, _ := wordRecords(3000)
	wire := func(batch int, kind Kind, combine bool, set Settings) map[int][]byte {
		set.Kind = kind
		out := map[int][]byte{}
		env := Env{Settings: set, Emit: func(part int, b Block) error {
			out[part] = append(out[part], b.Bytes()...)
			b.Release()
			return nil
		}}
		w := NewWriter(pairSpec(4, combine), env)
		if batch <= 1 {
			for _, r := range recs {
				if err := w.Write(r); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for i := 0; i < len(recs); i += batch {
				end := i + batch
				if end > len(recs) {
					end = len(recs)
				}
				if err := w.WriteBatch(recs[i:end]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	// Canonical per-partition form: the hash writer's combine table drains
	// in map order, so hash+combine bytes are nondeterministic run to run —
	// compare decoded, key-sorted records there; raw bytes everywhere else.
	canon := func(m map[int][]byte, sortRecs bool) map[int]string {
		out := map[int]string{}
		for p, data := range m {
			if !sortRecs {
				out[p] = string(data)
				continue
			}
			decoded, err := serde.DecodeAll(pairSpec(4, false).Codec, data)
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(decoded, func(i, j int) bool { return decoded[i].Key < decoded[j].Key })
			var buf []byte
			for _, kv := range decoded {
				buf = append(buf, fmt.Sprintf("%s=%d;", kv.Key, kv.Value)...)
			}
			out[p] = string(buf)
		}
		return out
	}
	for _, kind := range []Kind{Hash, Sort} {
		for _, combine := range []bool{false, true} {
			sortRecs := kind == Hash && combine
			want := canon(wire(1, kind, combine, Settings{}), sortRecs)
			for _, batch := range []int{3, 64, 256, 4096} {
				got := canon(wire(batch, kind, combine, Settings{}), sortRecs)
				for p, w := range want {
					if got[p] != w {
						t.Fatalf("%v/combine=%v batch=%d: partition %d contents differ", kind, combine, batch, p)
					}
				}
			}
		}
	}
	// Pipelined/spilling settings move block boundaries, not contents: the
	// concatenated decode must agree record-set-wise.
	for _, kind := range []Kind{Hash, Sort} {
		set := Settings{FlushBytes: 512, SpillRecs: 700}
		m := &metrics.JobMetrics{}
		got := runWriter(t, pairSpec(4, true), Env{Settings: Settings{Kind: kind, FlushBytes: set.FlushBytes, SpillRecs: set.SpillRecs}, Metrics: m}, recs)
		out := map[int][]byte{}
		env := Env{Settings: Settings{Kind: kind, FlushBytes: set.FlushBytes, SpillRecs: set.SpillRecs}, Emit: func(part int, b Block) error {
			out[part] = append(out[part], b.Bytes()...)
			return nil
		}}
		w := NewWriter(pairSpec(4, true), env)
		for i := 0; i < len(recs); i += 100 {
			end := i + 100
			if end > len(recs) {
				end = len(recs)
			}
			if err := w.WriteBatch(recs[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		spec := pairSpec(4, true)
		totals := map[string]int64{}
		for _, data := range out {
			decoded, err := serde.DecodeAll(spec.Codec, data)
			if err != nil {
				t.Fatal(err)
			}
			for _, kv := range decoded {
				totals[kv.Key] += kv.Value
			}
		}
		for k, v := range got {
			if totals[k] != v {
				t.Fatalf("%v batched+pipelined: count[%s] = %d, want %d", kind, k, totals[k], v)
			}
		}
	}
}

package shuffle

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/serde"
)

// Kind selects the shuffle implementation.
type Kind int

// Shuffle strategies.
const (
	// Hash is the bucketed, optionally pipelined repartition (Flink's
	// exchange, Spark's legacy hash shuffle manager).
	Hash Kind = iota
	// Sort is the spill-and-merge shuffle (Hadoop's map output pipeline,
	// Spark's tungsten-sort).
	Sort
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Sort {
		return "sort"
	}
	return "hash"
}

// ParseKind maps a configuration string to a Kind; anything but "hash" and
// "sort" (including "") keeps the engine's default.
func ParseKind(s string, def Kind) Kind {
	switch s {
	case "hash":
		return Hash
	case "sort":
		return Sort
	default:
		return def
	}
}

// Settings is the per-job shuffle configuration an engine resolves once
// from core conf keys and hands to every Writer and reader.
type Settings struct {
	// Kind is the effective strategy after applying core.ShuffleStrategy
	// over the engine default.
	Kind Kind
	// Compress is the block codec; nil stores blocks raw and unframed.
	Compress Compressor
	// SpillBytes caps the encoded bytes a sort writer buffers before it
	// spills a run (core.ShuffleSpillThreshold; 0 = no byte cap).
	SpillBytes int64
	// SpillRecs caps buffered records before a sort-writer spill (engine
	// defaults, e.g. MapReduce's io.sort.records; 0 = no record cap).
	SpillRecs int
	// FlushBytes is the hash writer's per-bucket pipelined flush threshold
	// (0 = buckets only flush at Close — a materialized shuffle).
	FlushBytes int64
}

// FromConf resolves the shared shuffle conf keys over an engine's default
// strategy. SpillRecs and FlushBytes stay zero; engines fill them from
// their own knobs.
func FromConf(conf *core.Config, def Kind) Settings {
	return Settings{
		Kind:       ParseKind(conf.String(core.ShuffleStrategy, ""), def),
		Compress:   CompressorFor(conf.String(core.ShuffleCompress, "none")),
		SpillBytes: int64(conf.Bytes(core.ShuffleSpillThreshold, 0)),
	}
}

// Block is one finished shuffle segment for one reduce partition: the wire
// bytes (possibly compressed/framed) plus the accounting the engines route
// into metrics. The byte storage is private — access goes through Bytes —
// so the zero-copy local-read path is a typed borrow/release contract
// instead of an aliasing convention:
//
//   - A writer SEALS a pool-backed block and hands ownership to Emit.
//   - A local read BORROWS the sealed bytes (Borrow): no copy, no release
//     rights — the owner's buffer stays live.
//   - A remote (or simulated-remote) read COPIES (CopyPooled) into a fresh
//     pooled buffer, keeping the local/remote byte-accounting rule honest.
//   - Whoever holds ownership calls Release when done; pool-backed storage
//     returns to memory.DefaultPool for the next writer.
type Block struct {
	data   []byte
	Raw    int64 // serialized bytes before compression
	Recs   int64 // record count
	pooled bool  // storage came from memory.DefaultPool; Release recycles it
}

// OwnedBlock wraps bytes the caller owns outright (e.g. borrowed DFS block
// storage). Release is a no-op.
func OwnedBlock(data []byte, raw, recs int64) Block {
	return Block{data: data, Raw: raw, Recs: recs}
}

// PooledBlock wraps a buffer obtained from memory.DefaultPool; Release
// returns the storage to the pool.
func PooledBlock(data []byte, raw, recs int64) Block {
	return Block{data: data, Raw: raw, Recs: recs, pooled: true}
}

// Bytes exposes the wire form. The slice is valid until the block's owner
// releases it; borrowers must not mutate it.
func (b Block) Bytes() []byte { return b.data }

// Len returns the wire length.
func (b Block) Len() int { return len(b.data) }

// copyLocal, when set, makes Borrow deep-copy like the pre-Block raw-[]byte
// handoff did on every local read. Only the raw-speed experiment (ext9)
// flips it, to measure what the zero-copy local path bought.
var copyLocal atomic.Bool

// SetZeroCopyLocal toggles the zero-copy local-read path (on by default)
// and returns the previous setting. Benchmark plumbing only.
func SetZeroCopyLocal(on bool) bool {
	return !copyLocal.Swap(!on)
}

// Borrow returns a zero-copy view without release rights — the local-read
// path. Releasing the borrow is a no-op; the owner's Release still governs
// the storage.
func (b Block) Borrow() Block {
	if copyLocal.Load() {
		data := make([]byte, len(b.data))
		copy(data, b.data)
		return Block{data: data, Raw: b.Raw, Recs: b.Recs}
	}
	return Block{data: b.data, Raw: b.Raw, Recs: b.Recs}
}

// CopyPooled deep-copies the block into a fresh pooled buffer — the remote
// fetch path. The copy is independently releasable.
func (b Block) CopyPooled() Block {
	buf := memory.DefaultPool.Get(len(b.data))
	buf = append(buf, b.data...)
	return Block{data: buf, Raw: b.Raw, Recs: b.Recs, pooled: true}
}

// Release returns pool-backed storage to memory.DefaultPool and clears the
// block. Releasing a borrowed or owned block is a no-op apart from the
// clear; Release is not idempotent-safe across aliases — exactly one owner.
func (b *Block) Release() {
	if b.pooled {
		memory.DefaultPool.Put(b.data)
	}
	b.data = nil
	b.pooled = false
}

// seal packs a pooled raw buffer into its wire form and transfers ownership
// into the returned block. With compression enabled the raw buffer is
// recycled immediately and the framed copy (also pooled) ships instead.
func seal(set Settings, raw []byte, recs int64) Block {
	if set.Compress == nil {
		return PooledBlock(raw, int64(len(raw)), recs)
	}
	data := Pack(set, raw)
	rawLen := int64(len(raw))
	memory.DefaultPool.Put(raw)
	return Block{data: data, Raw: rawLen, Recs: recs}
}

// Packet is one in-flight block of a pipelined exchange, tagged with the
// node of the producing task so the consumer can classify the read as local
// or remote under the shared accounting rule (see internal/metrics). The
// block's ownership travels with the packet: the consumer releases it after
// decoding.
type Packet struct {
	From  int
	Block Block
}

// Spec describes one shuffle edge, independent of the task executing it.
type Spec[R any] struct {
	// NumParts is the number of reduce partitions.
	NumParts int
	// Codec serializes records on the edge.
	Codec serde.Codec[R]
	// Route maps a record to its reduce partition.
	Route func(R) int
	// Less is the within-partition record order. The sort strategy spills
	// key-sorted runs and merges them when Less is set; with Less nil it
	// groups by partition only (tungsten-style). Must be consistent with
	// Same: equal records compare unordered.
	Less func(a, b R) bool
	// NormKey, when set alongside Less, appends the record's FULL
	// normalized sort key (see internal/serde's AppendKey* helpers): a
	// binary form whose bytes.Compare order equals Less exactly. Sort
	// writers then order runs by memcmp on packed key bytes instead of
	// calling Less per comparison — Flink's normalized-key sort and the
	// paper's OptimizedText trick on the TeraSort path. A key that is
	// merely a prefix of the logical order would diverge from Less-only
	// engines and break cross-engine parity; it must be total.
	NormKey func(v R, dst []byte) []byte
	// Same reports key equality, required by Merge and CombineRun.
	Same func(a, b R) bool
	// Hash is the key hash for the hash strategy's combine table, required
	// when Merge or CombineRun is set (core.HashKey over the record's key).
	Hash func(R) uint64
	// Merge is the pairwise map-side combiner (nil disables pairwise
	// combining).
	Merge func(a, b R) R
	// CombineRun is the run-level combiner (Hadoop's Combine over a sorted
	// run): it receives records grouped so equal keys are adjacent and
	// returns the folded run. Used when Merge is nil.
	CombineRun func(run []R) []R
}

// combining reports whether any map-side combine is configured.
func (s *Spec[R]) combining() bool { return s.Merge != nil || s.CombineRun != nil }

// SpillStore materializes sort-writer runs outside the task's memory — the
// MapReduce engine backs it with the simulated DFS so spill bytes hit disk.
// A nil store keeps runs in memory.
type SpillStore interface {
	// Write stores one run segment and returns its handle.
	Write(run, part int, data []byte) (string, error)
	// Read loads a segment back for the final merge.
	Read(handle string) ([]byte, error)
	// Remove deletes a merged segment.
	Remove(handle string)
}

// Env is the per-task environment a Writer runs in: the resolved settings,
// the engine's counters, its memory grant, and where finished blocks go.
type Env struct {
	Settings Settings
	// Metrics receives spill and combine accounting; shuffle write/read
	// bytes stay with the engine's Emit/fetch paths, which know locality.
	Metrics *metrics.JobMetrics
	// Mem asks the host engine for n more bytes of shuffle memory; false
	// forces a spill (sort) or combine drain (hash). nil always grants.
	Mem func(n int64) bool
	// Free returns every granted byte once at Close. nil ignores.
	Free func(n int64)
	// Emit receives finished blocks: pipelined flushes during writing
	// (hash strategy with FlushBytes > 0) and one final block per
	// partition at Close — empty partitions included, so materialized
	// shuffles can register a complete output.
	Emit func(part int, b Block) error
	// Spill materializes sort runs; nil buffers them in memory.
	Spill SpillStore
}

// memQuantum is the granularity of shuffle-memory reservations, shared by
// both strategies (Spark's 32 KB file-buffer quantum).
const memQuantum = 32 * 1024

// memCheckEvery bounds how many records are admitted between memory checks.
const memCheckEvery = 1024

// Writer is the map/producer side of one shuffle edge for one task. Write
// feeds one record; WriteBatch feeds a batch in one call — the vectorized
// emit path, semantically identical to writing each record in order but
// with per-record bookkeeping (pressure checks, pipelined-flush checks,
// route validation) amortized to once per batch, so thresholds are honored
// at batch granularity and a bucket may overshoot FlushBytes by up to one
// batch's bytes. The recs SLICE is borrowed only for the call (callers may
// reuse scratch); the record values are retained exactly as Write retains
// its argument. Close flushes every partition downstream. Writers are not
// safe for concurrent use — one writer per producing task, like one sort
// buffer per Hadoop map task.
type Writer[R any] interface {
	Write(rec R) error
	WriteBatch(recs []R) error
	Close() error
}

// NewWriter builds the Writer for the configured strategy. A Sort request
// without a record order still spills and merges, grouped by partition only
// — the honest model of tungsten-sort's partition-prefix sorting.
func NewWriter[R any](spec Spec[R], env Env) Writer[R] {
	if spec.NumParts <= 0 {
		panic("shuffle: writer needs at least one partition")
	}
	if spec.combining() && (spec.Same == nil || spec.Hash == nil) {
		panic("shuffle: combining writers need Same and Hash")
	}
	if env.Settings.Kind == Sort {
		return newSortWriter(spec, env)
	}
	return newHashWriter(spec, env)
}

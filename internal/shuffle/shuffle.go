package shuffle

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/serde"
)

// Kind selects the shuffle implementation.
type Kind int

// Shuffle strategies.
const (
	// Hash is the bucketed, optionally pipelined repartition (Flink's
	// exchange, Spark's legacy hash shuffle manager).
	Hash Kind = iota
	// Sort is the spill-and-merge shuffle (Hadoop's map output pipeline,
	// Spark's tungsten-sort).
	Sort
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Sort {
		return "sort"
	}
	return "hash"
}

// ParseKind maps a configuration string to a Kind; anything but "hash" and
// "sort" (including "") keeps the engine's default.
func ParseKind(s string, def Kind) Kind {
	switch s {
	case "hash":
		return Hash
	case "sort":
		return Sort
	default:
		return def
	}
}

// Settings is the per-job shuffle configuration an engine resolves once
// from core conf keys and hands to every Writer and reader.
type Settings struct {
	// Kind is the effective strategy after applying core.ShuffleStrategy
	// over the engine default.
	Kind Kind
	// Compress is the block codec; nil stores blocks raw and unframed.
	Compress Compressor
	// SpillBytes caps the encoded bytes a sort writer buffers before it
	// spills a run (core.ShuffleSpillThreshold; 0 = no byte cap).
	SpillBytes int64
	// SpillRecs caps buffered records before a sort-writer spill (engine
	// defaults, e.g. MapReduce's io.sort.records; 0 = no record cap).
	SpillRecs int
	// FlushBytes is the hash writer's per-bucket pipelined flush threshold
	// (0 = buckets only flush at Close — a materialized shuffle).
	FlushBytes int64
}

// FromConf resolves the shared shuffle conf keys over an engine's default
// strategy. SpillRecs and FlushBytes stay zero; engines fill them from
// their own knobs.
func FromConf(conf *core.Config, def Kind) Settings {
	return Settings{
		Kind:       ParseKind(conf.String(core.ShuffleStrategy, ""), def),
		Compress:   CompressorFor(conf.String(core.ShuffleCompress, "none")),
		SpillBytes: int64(conf.Bytes(core.ShuffleSpillThreshold, 0)),
	}
}

// Block is one finished shuffle segment for one reduce partition: the wire
// bytes (possibly compressed/framed) plus the accounting the engines route
// into metrics.
type Block struct {
	Data []byte // wire form: what is stored or sent
	Raw  int64  // serialized bytes before compression
	Recs int64  // record count
}

// Packet is one in-flight block of a pipelined exchange, tagged with the
// node of the producing task so the consumer can classify the read as local
// or remote under the shared accounting rule (see internal/metrics).
type Packet struct {
	From int
	Data []byte
	Raw  int64
}

// Spec describes one shuffle edge, independent of the task executing it.
type Spec[R any] struct {
	// NumParts is the number of reduce partitions.
	NumParts int
	// Codec serializes records on the edge.
	Codec serde.Codec[R]
	// Route maps a record to its reduce partition.
	Route func(R) int
	// Less is the within-partition record order. The sort strategy spills
	// key-sorted runs and merges them when Less is set; with Less nil it
	// groups by partition only (tungsten-style). Must be consistent with
	// Same: equal records compare unordered.
	Less func(a, b R) bool
	// Same reports key equality, required by Merge and CombineRun.
	Same func(a, b R) bool
	// Hash is the key hash for the hash strategy's combine table, required
	// when Merge or CombineRun is set (core.HashKey over the record's key).
	Hash func(R) uint64
	// Merge is the pairwise map-side combiner (nil disables pairwise
	// combining).
	Merge func(a, b R) R
	// CombineRun is the run-level combiner (Hadoop's Combine over a sorted
	// run): it receives records grouped so equal keys are adjacent and
	// returns the folded run. Used when Merge is nil.
	CombineRun func(run []R) []R
}

// combining reports whether any map-side combine is configured.
func (s *Spec[R]) combining() bool { return s.Merge != nil || s.CombineRun != nil }

// SpillStore materializes sort-writer runs outside the task's memory — the
// MapReduce engine backs it with the simulated DFS so spill bytes hit disk.
// A nil store keeps runs in memory.
type SpillStore interface {
	// Write stores one run segment and returns its handle.
	Write(run, part int, data []byte) (string, error)
	// Read loads a segment back for the final merge.
	Read(handle string) ([]byte, error)
	// Remove deletes a merged segment.
	Remove(handle string)
}

// Env is the per-task environment a Writer runs in: the resolved settings,
// the engine's counters, its memory grant, and where finished blocks go.
type Env struct {
	Settings Settings
	// Metrics receives spill and combine accounting; shuffle write/read
	// bytes stay with the engine's Emit/fetch paths, which know locality.
	Metrics *metrics.JobMetrics
	// Mem asks the host engine for n more bytes of shuffle memory; false
	// forces a spill (sort) or combine drain (hash). nil always grants.
	Mem func(n int64) bool
	// Free returns every granted byte once at Close. nil ignores.
	Free func(n int64)
	// Emit receives finished blocks: pipelined flushes during writing
	// (hash strategy with FlushBytes > 0) and one final block per
	// partition at Close — empty partitions included, so materialized
	// shuffles can register a complete output.
	Emit func(part int, b Block) error
	// Spill materializes sort runs; nil buffers them in memory.
	Spill SpillStore
}

// memQuantum is the granularity of shuffle-memory reservations, shared by
// both strategies (Spark's 32 KB file-buffer quantum).
const memQuantum = 32 * 1024

// memCheckEvery bounds how many records are admitted between memory checks.
const memCheckEvery = 1024

// Writer is the map/producer side of one shuffle edge for one task. Write
// feeds records; Close flushes every partition downstream. Writers are not
// safe for concurrent use — one writer per producing task, like one sort
// buffer per Hadoop map task.
type Writer[R any] interface {
	Write(rec R) error
	Close() error
}

// NewWriter builds the Writer for the configured strategy. A Sort request
// without a record order still spills and merges, grouped by partition only
// — the honest model of tungsten-sort's partition-prefix sorting.
func NewWriter[R any](spec Spec[R], env Env) Writer[R] {
	if spec.NumParts <= 0 {
		panic("shuffle: writer needs at least one partition")
	}
	if spec.combining() && (spec.Same == nil || spec.Hash == nil) {
		panic("shuffle: combining writers need Same and Hash")
	}
	if env.Settings.Kind == Sort {
		return newSortWriter(spec, env)
	}
	return newHashWriter(spec, env)
}

package shuffle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/serde"
)

// DecodeBlocks unpacks and decodes fetched blocks into one record slice per
// block, in block (map-output) order. It must run with the Settings that
// wrote the blocks — both sides of an edge resolve the same conf. Decoding
// copies record payloads out of the wire bytes (every registered codec
// does), so the caller may Release the blocks as soon as this returns.
func DecodeBlocks[R any](set Settings, codec serde.Codec[R], blocks []Block) ([][]R, error) {
	out := make([][]R, len(blocks))
	for i, b := range blocks {
		raw, err := Unpack(set, b.Bytes())
		if err != nil {
			return nil, fmt.Errorf("shuffle: block %d: %w", i, err)
		}
		recs, err := serde.DecodeAll(codec, raw)
		if err != nil {
			return nil, fmt.Errorf("shuffle: block %d: %w", i, err)
		}
		out[i] = recs
	}
	return out, nil
}

// FoldFirstSeen is the hash reduce-side merge: pairs fold per key with
// merge, keys keep the order they were first seen across segments — the
// reduce path Spark's aggregation uses for combined shuffles.
func FoldFirstSeen[K comparable, C any](segs [][]core.Pair[K, C], merge func(C, C) C) []core.Pair[K, C] {
	merged := make(map[K]C)
	var order []K
	for _, seg := range segs {
		for _, rec := range seg {
			if acc, ok := merged[rec.Key]; ok {
				merged[rec.Key] = merge(acc, rec.Value)
			} else {
				merged[rec.Key] = rec.Value
				order = append(order, rec.Key)
			}
		}
	}
	out := make([]core.Pair[K, C], 0, len(order))
	for _, k := range order {
		out = append(out, core.KV(k, merged[k]))
	}
	return out
}

// Package memory models the two memory-management designs the paper
// contrasts (Section VIII, "Memory management"):
//
//   - Heap: Spark's model. All executor memory is one JVM heap carved into
//     storage and shuffle fractions; lots of live objects raise garbage
//     collection overhead, and overallocation kills the job.
//   - Managed: Flink's model. A fixed pool of fixed-size memory segments
//     (optionally off-heap) backs sorting, hash tables and caching;
//     operators that run out of segments spill to disk instead of dying —
//     except operators like CoGroup's solution set that must be in memory.
//
// Both engines consult these models for real: allocations are tracked,
// spill decisions and out-of-memory failures actually happen at the
// recorded thresholds, and the GC-pressure accounting feeds the paper-scale
// simulator.
package memory

import (
	"fmt"
	"sync"
)

// ErrOutOfMemory is returned when a reservation cannot fit. For the heap
// model this is the JVM OutOfMemoryError that, as the paper puts it,
// "will immediately destroy the JVM".
type ErrOutOfMemory struct {
	Pool      string
	Requested int64
	Free      int64
}

// Error implements error.
func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("memory: %s pool out of memory: requested %d bytes, %d free", e.Pool, e.Requested, e.Free)
}

// Heap models a JVM heap split into storage, shuffle/execution and user
// regions by static fractions, as Spark 1.5 did.
type Heap struct {
	mu sync.Mutex

	capacity        int64
	storageCap      int64
	shuffleCap      int64
	storageUsed     int64
	shuffleUsed     int64
	otherUsed       int64
	allocs          int64
	gcCycles        int64
	bytesReclaimed  int64
	peakUsed        int64
	evictionHandler func(need int64) int64
}

// NewHeap builds a heap of the given capacity with the storage and shuffle
// fractions of the paper's configuration tables.
func NewHeap(capacity int64, storageFraction, shuffleFraction float64) *Heap {
	if capacity <= 0 {
		panic("memory: heap capacity must be positive")
	}
	return &Heap{
		capacity:   capacity,
		storageCap: int64(float64(capacity) * storageFraction),
		shuffleCap: int64(float64(capacity) * shuffleFraction),
	}
}

// OnStorageEviction registers a callback invoked when storage needs room;
// it must drop cached blocks and return the bytes released WITHOUT calling
// FreeStorage itself (the heap adjusts its accounting with the returned
// amount). The spark engine's block manager registers its LRU eviction here.
func (h *Heap) OnStorageEviction(fn func(need int64) int64) {
	h.mu.Lock()
	h.evictionHandler = fn
	h.mu.Unlock()
}

// Capacity returns the configured heap size.
func (h *Heap) Capacity() int64 { return h.capacity }

// AllocStorage reserves cache space for a persisted RDD partition. When the
// storage region is full it first asks the eviction handler to make room;
// if still short it fails (the caller then degrades to disk or recompute).
func (h *Heap) AllocStorage(n int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.storageUsed+n > h.storageCap && h.evictionHandler != nil {
		need := h.storageUsed + n - h.storageCap
		h.mu.Unlock()
		freed := h.evictionHandler(need)
		h.mu.Lock()
		h.storageUsed -= freed
		h.gcCycles++
		h.bytesReclaimed += freed
		if h.storageUsed < 0 {
			h.storageUsed = 0
		}
	}
	if h.storageUsed+n > h.storageCap {
		return &ErrOutOfMemory{Pool: "storage", Requested: n, Free: h.storageCap - h.storageUsed}
	}
	h.storageUsed += n
	h.allocs++
	h.trackPeak()
	return nil
}

// FreeStorage releases cache space.
func (h *Heap) FreeStorage(n int64) {
	h.mu.Lock()
	h.storageUsed -= n
	if h.storageUsed < 0 {
		h.storageUsed = 0
	}
	h.mu.Unlock()
}

// AllocShuffle reserves execution memory for shuffle sorting/aggregation.
// It reports false when the region is exhausted, which tells the tungsten
// sorter to spill — never an error, matching Spark's spill-based sorter.
func (h *Heap) AllocShuffle(n int64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.shuffleUsed+n > h.shuffleCap {
		return false
	}
	h.shuffleUsed += n
	h.allocs++
	h.trackPeak()
	return true
}

// FreeShuffle releases execution memory.
func (h *Heap) FreeShuffle(n int64) {
	h.mu.Lock()
	h.shuffleUsed -= n
	if h.shuffleUsed < 0 {
		h.shuffleUsed = 0
	}
	h.mu.Unlock()
}

// AllocUser reserves unmanaged heap for user data structures (e.g.
// collectAsMap results). Unlike shuffle memory there is no spill path: if
// it does not fit in the whole remaining heap the job dies, which is how
// the paper's large-graph Spark runs fail before edge partitions are
// doubled.
func (h *Heap) AllocUser(n int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	free := h.capacity - h.storageUsed - h.shuffleUsed - h.otherUsed
	if n > free {
		return &ErrOutOfMemory{Pool: "heap", Requested: n, Free: free}
	}
	h.otherUsed += n
	h.allocs++
	h.trackPeak()
	return nil
}

// FreeUser releases unmanaged heap.
func (h *Heap) FreeUser(n int64) {
	h.mu.Lock()
	h.otherUsed -= n
	if h.otherUsed < 0 {
		h.otherUsed = 0
	}
	h.mu.Unlock()
}

func (h *Heap) trackPeak() {
	if u := h.storageUsed + h.shuffleUsed + h.otherUsed; u > h.peakUsed {
		h.peakUsed = u
	}
}

// Used returns the current total live bytes.
func (h *Heap) Used() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.storageUsed + h.shuffleUsed + h.otherUsed
}

// Peak returns the high-water mark of live bytes.
func (h *Heap) Peak() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peakUsed
}

// GCPressure estimates the fraction of CPU time lost to garbage collection
// at the current occupancy. The model is the paper's qualitative claim made
// quantitative: large heaps overwhelmed with many live objects suffer; cost
// grows superlinearly once the heap passes ~60% occupancy.
func (h *Heap) GCPressure() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	occ := float64(h.storageUsed+h.shuffleUsed+h.otherUsed) / float64(h.capacity)
	return GCPressureAt(occ)
}

// GCPressureAt is the pure occupancy→overhead curve, exported so the
// paper-scale simulator can reuse the identical model.
func GCPressureAt(occupancy float64) float64 {
	if occupancy <= 0.6 {
		return 0.02 * occupancy / 0.6
	}
	over := occupancy - 0.6
	return 0.02 + 0.45*over*over/(0.4*0.4)
}

// Stats is a snapshot of heap accounting for metrics reports.
type Stats struct {
	Capacity, StorageUsed, ShuffleUsed, OtherUsed, Peak int64
	Allocs, GCCycles, BytesReclaimed                    int64
}

// Snapshot returns current accounting.
func (h *Heap) Snapshot() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Stats{
		Capacity:       h.capacity,
		StorageUsed:    h.storageUsed,
		ShuffleUsed:    h.shuffleUsed,
		OtherUsed:      h.otherUsed,
		Peak:           h.peakUsed,
		Allocs:         h.allocs,
		GCCycles:       h.gcCycles,
		BytesReclaimed: h.bytesReclaimed,
	}
}

package memory

import "testing"

func TestBufPoolRecycles(t *testing.T) {
	p := &BufPool{}
	b := p.Get(1000)
	if cap(b) < 1000 || len(b) != 0 {
		t.Fatalf("Get(1000) = len %d cap %d", len(b), cap(b))
	}
	p.Put(b)
	b2 := p.Get(900) // same class; must hit the recycled buffer
	if cap(b2) < 900 {
		t.Fatalf("Get(900) cap %d", cap(b2))
	}
	gets, puts, misses := p.Stats()
	if gets != 2 || puts != 1 {
		t.Fatalf("stats gets=%d puts=%d", gets, puts)
	}
	if misses != 1 {
		t.Fatalf("misses=%d, want 1 (second Get should recycle)", misses)
	}
}

func TestBufPoolOutOfClassRequests(t *testing.T) {
	p := &BufPool{}
	big := p.Get(64 << 20) // beyond maxClass: plain allocation
	if cap(big) < 64<<20 {
		t.Fatal("huge Get under-allocated")
	}
	p.Put(big) // must be dropped, not pooled
	small := p.Get(1)
	if cap(small) < 1 {
		t.Fatal("tiny Get under-allocated")
	}
	// A buffer that grew past its class must round down so Get's capacity
	// promise holds.
	odd := make([]byte, 0, 1000)
	p.Put(odd)
	got := p.Get(512)
	if cap(got) < 512 {
		t.Fatalf("Get(512) after odd Put: cap %d", cap(got))
	}
}

func TestBufPoolZeroAllocSteadyState(t *testing.T) {
	p := &BufPool{}
	src := make([]byte, 100)
	allocs := testing.AllocsPerRun(1000, func() {
		b := p.Get(4096)
		b = append(b, src...)
		p.Put(b)
	})
	// The per-Put box aside (one word-sized object per BLOCK, not per
	// record), Get/Put round-trips must not allocate buffer storage.
	if allocs > 1 {
		t.Fatalf("steady-state Get/Put allocates %.1f/op", allocs)
	}
}

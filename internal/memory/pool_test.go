package memory

import (
	"sync"
	"testing"
)

func TestBufPoolRecycles(t *testing.T) {
	p := &BufPool{}
	b := p.Get(1000)
	if cap(b) < 1000 || len(b) != 0 {
		t.Fatalf("Get(1000) = len %d cap %d", len(b), cap(b))
	}
	p.Put(b)
	b2 := p.Get(900) // same class; must hit the recycled buffer
	if cap(b2) < 900 {
		t.Fatalf("Get(900) cap %d", cap(b2))
	}
	gets, puts, misses := p.Stats()
	if gets != 2 || puts != 1 {
		t.Fatalf("stats gets=%d puts=%d", gets, puts)
	}
	if misses != 1 {
		t.Fatalf("misses=%d, want 1 (second Get should recycle)", misses)
	}
}

func TestBufPoolOutOfClassRequests(t *testing.T) {
	p := &BufPool{}
	big := p.Get(64 << 20) // beyond maxClass: plain allocation
	if cap(big) < 64<<20 {
		t.Fatal("huge Get under-allocated")
	}
	p.Put(big) // must be dropped, not pooled
	small := p.Get(1)
	if cap(small) < 1 {
		t.Fatal("tiny Get under-allocated")
	}
	// A buffer that grew past its class must round down so Get's capacity
	// promise holds.
	odd := make([]byte, 0, 1000)
	p.Put(odd)
	got := p.Get(512)
	if cap(got) < 512 {
		t.Fatalf("Get(512) after odd Put: cap %d", cap(got))
	}
}

func TestBufPoolZeroAllocSteadyState(t *testing.T) {
	p := &BufPool{}
	src := make([]byte, 100)
	allocs := testing.AllocsPerRun(1000, func() {
		b := p.Get(4096)
		b = append(b, src...)
		p.Put(b)
	})
	// The per-Put box aside (one word-sized object per BLOCK, not per
	// record), Get/Put round-trips must not allocate buffer storage.
	if allocs > 1 {
		t.Fatalf("steady-state Get/Put allocates %.1f/op", allocs)
	}
}

// TestBufPoolConcurrentBorrowRelease hammers one pool from many goroutines
// (the shuffle-writer/reader pattern: borrow, fill, hand off, release) under
// the race detector. Each goroutine stamps its buffers with its own id and
// re-checks the stamp before Put — a recycled buffer handed to two owners
// at once shows up as a stamp mismatch or a detector report.
func TestBufPoolConcurrentBorrowRelease(t *testing.T) {
	p := &BufPool{}
	const (
		workers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			sizes := []int{300, 4 << 10, 64 << 10, 300} // cross size classes
			held := make([][]byte, 0, 4)
			for r := 0; r < rounds; r++ {
				b := p.Get(sizes[r%len(sizes)])
				b = b[:16]
				for i := range b {
					b[i] = id
				}
				held = append(held, b)
				if len(held) == cap(held) || r == rounds-1 {
					for _, h := range held {
						for _, c := range h {
							if c != id {
								select {
								case errs <- "buffer shared between owners":
								default:
								}
								return
							}
						}
						p.Put(h)
					}
					held = held[:0]
				}
			}
		}(byte(w + 1))
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	gets, puts, _ := p.Stats()
	if gets != workers*rounds || puts != workers*rounds {
		t.Fatalf("stats gets=%d puts=%d, want %d each", gets, puts, workers*rounds)
	}
}

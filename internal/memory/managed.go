package memory

import (
	"errors"
	"fmt"
	"sync"
)

// ErrSolutionSetTooLarge reports that an operator which must keep its state
// fully in managed memory (Flink's CoGroup solution set) exceeded the pool.
// This is the failure mode behind the "no" entries of the paper's Table VII.
var ErrSolutionSetTooLarge = errors.New("memory: in-memory solution set exceeds managed pool")

// SegmentSize is Flink's memory segment granularity (32 KiB), also the
// default network/shuffle buffer size in the paper's tables.
const SegmentSize = 32 * 1024

// Managed models Flink's managed memory: a fixed pool of equal segments,
// optionally off-heap, sized by taskmanager.memory × memory.fraction.
// Operators acquire segments; when the pool runs dry they are told to
// spill (the paper: "most of the operators are implemented so that they
// can survive with very little memory, spilling to disk when necessary").
type Managed struct {
	mu sync.Mutex

	totalSegments int
	freeSegments  int
	offHeap       bool
	peakInUse     int
	acquires      int64
	spillSignals  int64
}

// NewManaged builds a managed pool from a total memory budget and the
// managed fraction, as flink.taskmanager.memory.fraction does.
func NewManaged(total int64, fraction float64, offHeap bool) *Managed {
	n := int(float64(total) * fraction / SegmentSize)
	if n < 1 {
		n = 1
	}
	return &Managed{totalSegments: n, freeSegments: n, offHeap: offHeap}
}

// OffHeap reports whether the pool is allocated outside the heap (hybrid
// setup); off-heap pools do not contribute to GC pressure.
func (m *Managed) OffHeap() bool { return m.offHeap }

// TotalSegments returns the pool size in segments.
func (m *Managed) TotalSegments() int { return m.totalSegments }

// Acquire takes up to want segments and returns how many were granted
// (possibly fewer, never zero unless want<=0 or the pool is empty). A
// shortfall is a spill signal, counted for metrics.
func (m *Managed) Acquire(want int) int {
	if want <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	got := want
	if got > m.freeSegments {
		got = m.freeSegments
		m.spillSignals++
	}
	m.freeSegments -= got
	m.acquires++
	if used := m.totalSegments - m.freeSegments; used > m.peakInUse {
		m.peakInUse = used
	}
	return got
}

// MustAcquire takes exactly want segments or fails. Operators that cannot
// spill — the paper singles out CoGroup building the delta-iteration
// solution set in memory — use this and crash the job on shortage,
// reproducing the Table VII failures.
func (m *Managed) MustAcquire(want int, operator string) error {
	if want <= 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if want > m.freeSegments {
		return fmt.Errorf("memory: operator %s needs %d segments, only %d free: %w",
			operator, want, m.freeSegments, ErrSolutionSetTooLarge)
	}
	m.freeSegments -= want
	m.acquires++
	if used := m.totalSegments - m.freeSegments; used > m.peakInUse {
		m.peakInUse = used
	}
	return nil
}

// Release returns segments to the pool.
func (m *Managed) Release(n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.freeSegments += n
	if m.freeSegments > m.totalSegments {
		m.freeSegments = m.totalSegments
	}
	m.mu.Unlock()
}

// Free returns the currently available segments.
func (m *Managed) Free() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.freeSegments
}

// SpillSignals returns how many acquisitions came up short — each one is a
// sorter spill in the flink engine.
func (m *Managed) SpillSignals() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spillSignals
}

// PeakInUse returns the segment high-water mark.
func (m *Managed) PeakInUse() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peakInUse
}

// GCPressure returns the GC overhead contributed by the pool: zero when
// off-heap; when on-heap the pool occupies the heap but as few large
// long-lived segments, a quarter of the object-churn cost of the same
// bytes on a Spark-style heap.
func (m *Managed) GCPressure() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.offHeap {
		return 0
	}
	occ := float64(m.totalSegments-m.freeSegments) / float64(m.totalSegments)
	return GCPressureAt(occ) * 0.25
}

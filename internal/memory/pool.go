package memory

import (
	"sync"
	"sync/atomic"
)

// BufPool recycles byte buffers across records, blocks, and spill runs so
// the steady-state encode/decode path performs zero per-record allocations —
// the tungsten discipline: memory is managed in reusable chunks, not churned
// through the garbage collector one object at a time.
//
// Buffers are size-classed in powers of two from minClass to maxClass;
// requests outside the classes fall through to plain allocation (they are
// rare and would only pin oversized memory in the pool). Get returns a
// zero-length slice with at least the requested capacity; Put recycles the
// buffer for a later Get. The pool is safe for concurrent use.
type BufPool struct {
	classes  [poolClasses]sync.Pool
	gets     atomic.Int64
	puts     atomic.Int64
	misses   atomic.Int64 // Gets served by a fresh allocation
	disabled atomic.Bool  // bypass recycling (benchmark baseline emulation)
}

const (
	poolMinBits = 8  // 256 B — smallest pooled class
	poolMaxBits = 22 // 4 MiB — largest pooled class
	poolClasses = poolMaxBits - poolMinBits + 1
)

// DefaultPool is the process-wide buffer pool the serde and shuffle layers
// draw from. Engines share it deliberately: a buffer sealed by a shuffle
// writer on one "node" is recycled by a reader on another, exactly like a
// real deployment's slab allocator.
var DefaultPool = &BufPool{}

// classFor returns the size-class index for a capacity, or -1 when the
// request is outside the pooled range.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	bits := 0
	for c := n - 1; c > 0; c >>= 1 {
		bits++
	}
	if bits < poolMinBits {
		return 0
	}
	if bits > poolMaxBits {
		return -1
	}
	return bits - poolMinBits
}

// SetEnabled turns recycling off (every Get allocates fresh, every Put
// drops its buffer) or back on, returning the previous setting. Only the
// raw-speed experiment (ext9) disables the pool, to measure the pre-pool
// allocation churn as a baseline; capacity promises hold either way.
func (p *BufPool) SetEnabled(on bool) bool {
	return !p.disabled.Swap(!on)
}

// Get returns a zero-length buffer with capacity ≥ n, recycled when a
// previous Put left one in n's size class.
func (p *BufPool) Get(n int) []byte {
	p.gets.Add(1)
	if p.disabled.Load() {
		p.misses.Add(1)
		return make([]byte, 0, n)
	}
	cls := classFor(n)
	if cls < 0 {
		p.misses.Add(1)
		return make([]byte, 0, n)
	}
	if v := p.classes[cls].Get(); v != nil {
		return v.(*poolBuf).b[:0]
	}
	p.misses.Add(1)
	return make([]byte, 0, 1<<(cls+poolMinBits))
}

// Put recycles a buffer. The caller must not touch buf afterwards; aliases
// into it (sub-slices handed to borrowers) must have been released first —
// that contract is what shuffle.Block makes explicit.
func (p *BufPool) Put(buf []byte) {
	if buf == nil || p.disabled.Load() {
		return
	}
	c := cap(buf)
	if c < 1<<poolMinBits || c > 1<<poolMaxBits {
		return // outside the classes: let the GC have it
	}
	cls := classFor(c)
	if cls < 0 || 1<<(cls+poolMinBits) != c {
		// Not an exact class capacity (the buffer grew past its class via
		// append): round down so a future Get's capacity promise holds.
		for cls = poolClasses - 1; cls >= 0; cls-- {
			if 1<<(cls+poolMinBits) <= c {
				break
			}
		}
		if cls < 0 {
			return
		}
	}
	p.puts.Add(1)
	p.classes[cls].Put(&poolBuf{b: buf[:0]})
}

// poolBuf boxes a slice so sync.Pool stores a pointer-shaped value
// (avoiding an allocation per Put from interface conversion).
type poolBuf struct{ b []byte }

// Stats reports pool traffic: total Gets, Puts, and the Gets that missed
// the pool and allocated. A steady-state hit rate near 1 is the zero-alloc
// goal; tests assert on it.
func (p *BufPool) Stats() (gets, puts, misses int64) {
	return p.gets.Load(), p.puts.Load(), p.misses.Load()
}

package memory

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestHeapRegions(t *testing.T) {
	h := NewHeap(1000, 0.6, 0.2)
	if err := h.AllocStorage(600); err != nil {
		t.Fatalf("storage alloc within fraction failed: %v", err)
	}
	if err := h.AllocStorage(1); err == nil {
		t.Error("storage alloc beyond fraction should fail without evictor")
	}
	if !h.AllocShuffle(200) {
		t.Error("shuffle alloc within fraction failed")
	}
	if h.AllocShuffle(1) {
		t.Error("shuffle alloc beyond fraction should signal spill")
	}
	h.FreeShuffle(200)
	if !h.AllocShuffle(150) {
		t.Error("shuffle alloc after free failed")
	}
}

func TestHeapUserOOM(t *testing.T) {
	h := NewHeap(1000, 0.6, 0.2)
	if err := h.AllocUser(900); err != nil {
		t.Fatalf("user alloc should fit in empty heap: %v", err)
	}
	err := h.AllocUser(200)
	if err == nil {
		t.Fatal("over-allocating user memory should kill the job")
	}
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("error should be *ErrOutOfMemory, got %T", err)
	}
	if oom.Pool != "heap" {
		t.Errorf("pool = %q, want heap", oom.Pool)
	}
}

func TestHeapEviction(t *testing.T) {
	h := NewHeap(1000, 0.5, 0.2)
	evicted := int64(0)
	h.OnStorageEviction(func(need int64) int64 {
		evicted += need
		return need // pretend we dropped exactly enough blocks
	})
	if err := h.AllocStorage(500); err != nil {
		t.Fatal(err)
	}
	if err := h.AllocStorage(100); err != nil {
		t.Fatalf("alloc with evictor should succeed: %v", err)
	}
	if evicted != 100 {
		t.Errorf("evicted %d bytes, want 100", evicted)
	}
	if got := h.Snapshot().GCCycles; got != 1 {
		t.Errorf("gc cycles = %d, want 1", got)
	}
}

func TestHeapPeakTracking(t *testing.T) {
	h := NewHeap(1000, 0.6, 0.2)
	_ = h.AllocUser(400)
	h.FreeUser(400)
	_ = h.AllocUser(100)
	if h.Peak() != 400 {
		t.Errorf("peak = %d, want 400", h.Peak())
	}
	if h.Used() != 100 {
		t.Errorf("used = %d, want 100", h.Used())
	}
}

func TestGCPressureCurve(t *testing.T) {
	if GCPressureAt(0) != 0 {
		t.Error("empty heap should have zero GC pressure")
	}
	low := GCPressureAt(0.3)
	mid := GCPressureAt(0.7)
	high := GCPressureAt(0.95)
	if !(low < mid && mid < high) {
		t.Errorf("GC pressure must grow with occupancy: %v %v %v", low, mid, high)
	}
	if high < 0.1 {
		t.Errorf("near-full heap should have substantial GC pressure, got %v", high)
	}
	f := func(a, b uint8) bool {
		x, y := float64(a)/255, float64(b)/255
		if x > y {
			x, y = y, x
		}
		return GCPressureAt(x) <= GCPressureAt(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("GC pressure not monotone: %v", err)
	}
}

func TestHeapConcurrentAccounting(t *testing.T) {
	h := NewHeap(1<<30, 0.6, 0.2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if h.AllocShuffle(1024) {
					h.FreeShuffle(1024)
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().ShuffleUsed; got != 0 {
		t.Errorf("shuffle bytes leaked: %d", got)
	}
}

func TestManagedAcquireRelease(t *testing.T) {
	m := NewManaged(10*SegmentSize, 1.0, false)
	if m.TotalSegments() != 10 {
		t.Fatalf("segments = %d, want 10", m.TotalSegments())
	}
	got := m.Acquire(4)
	if got != 4 || m.Free() != 6 {
		t.Errorf("Acquire(4) = %d free=%d", got, m.Free())
	}
	// Asking for more than free grants the remainder and signals a spill.
	got = m.Acquire(8)
	if got != 6 {
		t.Errorf("Acquire(8) with 6 free = %d, want 6", got)
	}
	if m.SpillSignals() != 1 {
		t.Errorf("spill signals = %d, want 1", m.SpillSignals())
	}
	m.Release(10)
	if m.Free() != 10 {
		t.Errorf("free after release = %d, want 10", m.Free())
	}
}

func TestManagedMustAcquireFailure(t *testing.T) {
	m := NewManaged(4*SegmentSize, 1.0, false)
	if err := m.MustAcquire(3, "CoGroup"); err != nil {
		t.Fatalf("MustAcquire within pool failed: %v", err)
	}
	err := m.MustAcquire(2, "CoGroup (solution set)")
	if err == nil {
		t.Fatal("MustAcquire beyond pool must fail — this is the Table VII crash")
	}
	if !errors.Is(err, ErrSolutionSetTooLarge) {
		t.Errorf("error should wrap ErrSolutionSetTooLarge, got %v", err)
	}
}

func TestManagedGCPressure(t *testing.T) {
	on := NewManaged(100*SegmentSize, 1.0, false)
	off := NewManaged(100*SegmentSize, 1.0, true)
	on.Acquire(90)
	off.Acquire(90)
	if off.GCPressure() != 0 {
		t.Error("off-heap pool must not contribute GC pressure")
	}
	if on.GCPressure() <= 0 {
		t.Error("on-heap pool at 90% should contribute GC pressure")
	}
	heap := NewHeap(100*SegmentSize, 0.6, 0.2)
	_ = heap.AllocUser(90 * SegmentSize)
	if on.GCPressure() >= heap.GCPressure() {
		t.Error("managed segments must be cheaper for GC than heap objects")
	}
}

func TestManagedReleaseClampsAtTotal(t *testing.T) {
	m := NewManaged(5*SegmentSize, 1.0, false)
	m.Release(100)
	if m.Free() != 5 {
		t.Errorf("free = %d, want clamp at 5", m.Free())
	}
}

func TestNewHeapPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHeap(0) should panic")
		}
	}()
	NewHeap(0, 0.5, 0.2)
}

func TestManagedPeak(t *testing.T) {
	m := NewManaged(8*SegmentSize, 1.0, false)
	m.Acquire(5)
	m.Release(5)
	m.Acquire(2)
	if m.PeakInUse() != 5 {
		t.Errorf("peak = %d, want 5", m.PeakInUse())
	}
}

// Datagen generates workload inputs on stdout or into a file: Zipf text,
// TeraGen records, K-Means points and R-MAT edge lists.
//
// Usage:
//
//	datagen -kind text -bytes 1048576 > corpus.txt
//	datagen -kind tera -records 10000 -out tera.dat
//	datagen -kind points -records 100000 -k 5 > points.csv
//	datagen -kind graph -graph small -scale 100000 > edges.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/datagen"
)

func main() {
	kind := flag.String("kind", "text", "text | tera | points | graph")
	out := flag.String("out", "", "output file (default stdout)")
	seed := flag.Int64("seed", 1, "generator seed")
	bytes := flag.Int("bytes", 1<<20, "text size in bytes")
	records := flag.Int("records", 1000, "record count (tera, points)")
	k := flag.Int("k", 3, "clusters (points)")
	graph := flag.String("graph", "small", "small | medium | large")
	scale := flag.Int64("scale", 100000, "graph downscale factor")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	switch *kind {
	case "text":
		if _, err := bw.Write(datagen.Text(*seed, *bytes, 10)); err != nil {
			log.Fatal(err)
		}
	case "tera":
		if _, err := bw.Write(datagen.TeraGen(*seed, *records)); err != nil {
			log.Fatal(err)
		}
	case "points":
		pts, _ := datagen.KMeansPoints(*seed, *records, *k, 2.0)
		for _, p := range pts {
			fmt.Fprintf(bw, "%g,%g\n", p.X, p.Y)
		}
	case "graph":
		var spec datagen.GraphSpec
		switch *graph {
		case "small":
			spec = datagen.SmallGraph
		case "medium":
			spec = datagen.MediumGraph
		case "large":
			spec = datagen.LargeGraph
		default:
			log.Fatalf("unknown graph %q", *graph)
		}
		for _, e := range datagen.RMAT(*seed, spec.Scale(*scale)) {
			fmt.Fprintf(bw, "%d\t%d\n", e.Src, e.Dst)
		}
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}

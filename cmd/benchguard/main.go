// Benchguard is the CI bench-regression gate: it compares the current
// BENCH_smoke.json against the previous push's artifact and flags cells
// that worsened beyond a threshold.
//
// Usage:
//
//	benchguard -baseline prev.json -current BENCH_smoke.json -fail tab1
//
// Reports are matched by experiment id, rows by label, and cells by JSON
// field name; only numeric lower-is-better fields compare (utilization
// fields are skipped). A worsening past -max-worsen (default 25%) on an
// experiment named in -fail fails the run; on any other experiment it only
// warns — the real-engine families (ext6..ext10) measure wall-clock on
// shared CI runners and are too noisy to gate on, while tab1's simulated
// cells are deterministic. The per-record raw-speed cells
// (*_ns_per_record, *_allocs_per_record — the ext9/ext11 trajectory) are
// the exception: they are the acceptance metric of the raw-speed layer and
// hard-fail past the threshold no matter which experiment they appear in.
// A missing or unreadable baseline warns and passes: the first push, an
// expired artifact, or a schema change must not wedge CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// report mirrors benchrunner's JSON shape loosely: rows decode into raw
// maps so the guard compares whatever numeric cells both sides carry,
// independent of which report family they came from.
type report struct {
	ID    string                       `json:"id"`
	Title string                       `json:"title"`
	Rows  []map[string]json.RawMessage `json:"rows"`
}

func load(name string) (map[string]report, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	var reps []report
	if err := json.Unmarshal(data, &reps); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	out := make(map[string]report, len(reps))
	for _, r := range reps {
		out[r.ID] = r
	}
	return out, nil
}

// cell extracts a numeric field; ok is false for absent or non-numeric
// values.
func cell(row map[string]json.RawMessage, key string) (float64, bool) {
	raw, present := row[key]
	if !present {
		return 0, false
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, false
	}
	return v, true
}

func label(row map[string]json.RawMessage) string {
	var s string
	_ = json.Unmarshal(row["label"], &s)
	return s
}

// comparable reports whether a field is a lower-is-better metric cell.
// Std-deviation columns are run noise, utilization is higher-is-better,
// and label/note are strings.
func comparable(key string) bool {
	if strings.Contains(key, "util") || strings.Contains(key, "_std") {
		return false
	}
	switch key {
	case "label", "note":
		return false
	}
	return true
}

// gated reports whether a cell hard-fails on regression regardless of the
// -fail experiment list: the per-record raw-speed fields are the
// acceptance metric the serde/shuffle/vectorization layers are graded on,
// so a >threshold worsening anywhere (ext9, ext11) gates CI.
func gated(key string) bool {
	return strings.HasSuffix(key, "_ns_per_record") || strings.HasSuffix(key, "_allocs_per_record")
}

func main() {
	baseline := flag.String("baseline", "", "previous BENCH_smoke.json (missing = warn and pass)")
	current := flag.String("current", "BENCH_smoke.json", "current BENCH_smoke.json")
	maxWorsen := flag.Float64("max-worsen", 0.25, "tolerated fractional worsening per cell")
	failIDs := flag.String("fail", "tab1", "comma-separated experiment ids whose regressions fail (others warn)")
	flag.Parse()

	failOn := map[string]bool{}
	for _, id := range strings.Split(*failIDs, ",") {
		if id = strings.TrimSpace(id); id != "" {
			failOn[id] = true
		}
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Printf("benchguard: no usable baseline (%v); skipping regression check\n", err)
		return
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}

	failures := 0
	warnings := 0
	for id, curRep := range cur {
		baseRep, ok := base[id]
		if !ok {
			continue // new experiment: nothing to compare yet
		}
		baseRows := make(map[string]map[string]json.RawMessage, len(baseRep.Rows))
		for _, row := range baseRep.Rows {
			baseRows[label(row)] = row
		}
		for _, row := range curRep.Rows {
			baseRow, ok := baseRows[label(row)]
			if !ok {
				continue
			}
			for key := range row {
				if !comparable(key) {
					continue
				}
				curV, ok1 := cell(row, key)
				baseV, ok2 := cell(baseRow, key)
				if !ok1 || !ok2 || baseV <= 0 {
					continue
				}
				worsen := curV/baseV - 1
				if worsen <= *maxWorsen {
					continue
				}
				verdict := "WARN"
				if failOn[id] || gated(key) {
					verdict = "FAIL"
					failures++
				} else {
					warnings++
				}
				fmt.Printf("benchguard %s: %s %q %s: %.4g -> %.4g (+%.0f%%, limit +%.0f%%)\n",
					verdict, id, label(row), key, baseV, curV, worsen*100, *maxWorsen*100)
			}
		}
	}
	if failures == 0 && warnings == 0 {
		fmt.Println("benchguard: no regressions past the threshold")
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d gated regression(s)\n", failures)
		os.Exit(1)
	}
}

package main

import (
	"encoding/json"
	"math"
	"os"

	"repro/internal/experiments"
)

// The -json output: the perf trajectory artifact CI uploads per push
// (BENCH_*.json). NaN cells (failed runs, filtered engines) are omitted,
// which encoding/json would otherwise reject. Latency reports (ext7)
// carry *_p50_ms/*_p99_ms fields instead of the *_s runtime columns.

type jsonRow struct {
	Label        string   `json:"label"`
	Spark        *float64 `json:"spark_s,omitempty"`
	SparkStd     *float64 `json:"spark_std,omitempty"`
	Flink        *float64 `json:"flink_s,omitempty"`
	FlinkStd     *float64 `json:"flink_std,omitempty"`
	MapReduce    *float64 `json:"mapreduce_s,omitempty"`
	MapReduceStd *float64 `json:"mapreduce_std,omitempty"`
	// Latency reports (ext7): percentiles in milliseconds instead of the
	// mean-seconds columns above. spark = micro-batch, flink = per-event.
	SparkP50 *float64 `json:"spark_p50_ms,omitempty"`
	SparkP99 *float64 `json:"spark_p99_ms,omitempty"`
	FlinkP50 *float64 `json:"flink_p50_ms,omitempty"`
	FlinkP99 *float64 `json:"flink_p99_ms,omitempty"`
	Note     string   `json:"note,omitempty"`
}

type jsonReport struct {
	ID    string     `json:"id"`
	Title string     `json:"title"`
	Rows  []jsonRow  `json:"rows,omitempty"`
	Table [][]string `json:"table,omitempty"`
	Notes []string   `json:"notes,omitempty"`
}

func finite(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func toJSONReport(rep *experiments.Report) jsonReport {
	out := jsonReport{ID: rep.ID, Title: rep.Title, Table: rep.Table, Notes: rep.Notes}
	for _, row := range rep.Rows {
		jr := jsonRow{Label: row.Label, Note: row.PaperNote}
		if rep.Latency {
			jr.SparkP50 = finite(row.Spark)
			jr.SparkP99 = finite(row.SparkP99)
			jr.FlinkP50 = finite(row.Flink)
			jr.FlinkP99 = finite(row.FlinkP99)
		} else {
			jr.Spark = finite(row.Spark)
			jr.SparkStd = finite(row.SparkStd)
			jr.Flink = finite(row.Flink)
			jr.FlinkStd = finite(row.FlinkStd)
			if rep.ThreeWay {
				jr.MapReduce = finite(row.MapRed)
				jr.MapReduceStd = finite(row.MapRedStd)
			}
		}
		out.Rows = append(out.Rows, jr)
	}
	return out
}

// writeJSON writes the collected reports as an indented JSON array.
func writeJSON(name string, reps []*experiments.Report) error {
	out := make([]jsonReport, len(reps))
	for i, rep := range reps {
		out[i] = toJSONReport(rep)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(name, append(data, '\n'), 0o644)
}

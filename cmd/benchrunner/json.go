package main

import (
	"encoding/json"
	"math"
	"os"

	"repro/internal/experiments"
)

// The -json output: the perf trajectory artifact CI uploads per push
// (BENCH_*.json). NaN cells (failed runs, filtered engines) become null,
// which encoding/json would otherwise reject.

type jsonRow struct {
	Label        string   `json:"label"`
	Spark        *float64 `json:"spark_s"`
	SparkStd     *float64 `json:"spark_std,omitempty"`
	Flink        *float64 `json:"flink_s"`
	FlinkStd     *float64 `json:"flink_std,omitempty"`
	MapReduce    *float64 `json:"mapreduce_s,omitempty"`
	MapReduceStd *float64 `json:"mapreduce_std,omitempty"`
	Note         string   `json:"note,omitempty"`
}

type jsonReport struct {
	ID    string     `json:"id"`
	Title string     `json:"title"`
	Rows  []jsonRow  `json:"rows,omitempty"`
	Table [][]string `json:"table,omitempty"`
	Notes []string   `json:"notes,omitempty"`
}

func finite(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func toJSONReport(rep *experiments.Report) jsonReport {
	out := jsonReport{ID: rep.ID, Title: rep.Title, Table: rep.Table, Notes: rep.Notes}
	for _, row := range rep.Rows {
		jr := jsonRow{
			Label:    row.Label,
			Spark:    finite(row.Spark),
			SparkStd: finite(row.SparkStd),
			Flink:    finite(row.Flink),
			FlinkStd: finite(row.FlinkStd),
			Note:     row.PaperNote,
		}
		if rep.ThreeWay {
			jr.MapReduce = finite(row.MapRed)
			jr.MapReduceStd = finite(row.MapRedStd)
		}
		out.Rows = append(out.Rows, jr)
	}
	return out
}

// writeJSON writes the collected reports as an indented JSON array.
func writeJSON(name string, reps []*experiments.Report) error {
	out := make([]jsonReport, len(reps))
	for i, rep := range reps {
		out[i] = toJSONReport(rep)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(name, append(data, '\n'), 0o644)
}

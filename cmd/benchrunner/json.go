package main

import (
	"encoding/json"
	"math"
	"os"

	"repro/internal/experiments"
)

// The -json output: the perf trajectory artifact CI uploads per push
// (BENCH_*.json). NaN cells (failed runs, filtered engines) are omitted,
// which encoding/json would otherwise reject. Latency reports (ext7)
// carry *_p50_ms/*_p99_ms fields instead of the *_s runtime columns.

type jsonRow struct {
	Label        string   `json:"label"`
	Spark        *float64 `json:"spark_s,omitempty"`
	SparkStd     *float64 `json:"spark_std,omitempty"`
	Flink        *float64 `json:"flink_s,omitempty"`
	FlinkStd     *float64 `json:"flink_std,omitempty"`
	MapReduce    *float64 `json:"mapreduce_s,omitempty"`
	MapReduceStd *float64 `json:"mapreduce_std,omitempty"`
	// Latency reports (ext7/ext8): percentiles in milliseconds instead of
	// the *_s runtime columns above. For ext7, spark = micro-batch and
	// flink = per-event; for ext8 the cells are per-job JCT percentiles.
	SparkP50     *float64 `json:"spark_p50_ms,omitempty"`
	SparkP99     *float64 `json:"spark_p99_ms,omitempty"`
	FlinkP50     *float64 `json:"flink_p50_ms,omitempty"`
	FlinkP99     *float64 `json:"flink_p99_ms,omitempty"`
	MapReduceP50 *float64 `json:"mapreduce_p50_ms,omitempty"`
	MapReduceP99 *float64 `json:"mapreduce_p99_ms,omitempty"`
	// Contention reports (ext8): cluster utilization over the makespan and
	// p99 queue delay (submission → first slot grant) per engine run.
	SparkUtil     *float64 `json:"spark_util,omitempty"`
	FlinkUtil     *float64 `json:"flink_util,omitempty"`
	MapReduceUtil *float64 `json:"mapreduce_util,omitempty"`
	SparkQD99     *float64 `json:"spark_queue_p99_ms,omitempty"`
	FlinkQD99     *float64 `json:"flink_queue_p99_ms,omitempty"`
	MapReduceQD99 *float64 `json:"mapreduce_queue_p99_ms,omitempty"`
	// Raw-speed reports (ext9): wall-clock nanoseconds and heap allocations
	// per input record — the BENCH_smoke trajectory the bench-regression
	// guard watches.
	SparkNsRec      *float64 `json:"spark_ns_per_record,omitempty"`
	FlinkNsRec      *float64 `json:"flink_ns_per_record,omitempty"`
	MapReduceNsRec  *float64 `json:"mapreduce_ns_per_record,omitempty"`
	SparkAllocsRec  *float64 `json:"spark_allocs_per_record,omitempty"`
	FlinkAllocsRec  *float64 `json:"flink_allocs_per_record,omitempty"`
	MapReduceAllocs *float64 `json:"mapreduce_allocs_per_record,omitempty"`
	// Planner reports (ext10): measured seconds of the planner's choice,
	// the oracle sweep's best and worst fixed configurations, the regret
	// ratio and the re-plan count. All lower-is-better, so the guard's
	// generic comparison applies; the chosen configuration rides in note.
	PlannerSec *float64 `json:"planner_choice_s,omitempty"`
	OracleSec  *float64 `json:"oracle_s,omitempty"`
	WorstSec   *float64 `json:"worst_fixed_s,omitempty"`
	Regret     *float64 `json:"planner_regret,omitempty"`
	Replans    *float64 `json:"replans,omitempty"`
	Note       string   `json:"note,omitempty"`
}

type jsonReport struct {
	ID    string     `json:"id"`
	Title string     `json:"title"`
	Rows  []jsonRow  `json:"rows,omitempty"`
	Table [][]string `json:"table,omitempty"`
	Notes []string   `json:"notes,omitempty"`
}

func finite(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func toJSONReport(rep *experiments.Report) jsonReport {
	out := jsonReport{ID: rep.ID, Title: rep.Title, Table: rep.Table, Notes: rep.Notes}
	for _, row := range rep.Rows {
		jr := jsonRow{Label: row.Label, Note: row.PaperNote}
		if rep.PerRecord {
			jr.SparkNsRec = finite(row.SparkNsRec)
			jr.FlinkNsRec = finite(row.FlinkNsRec)
			jr.MapReduceNsRec = finite(row.MapRedNsRec)
			jr.SparkAllocsRec = finite(row.SparkAllocsRec)
			jr.FlinkAllocsRec = finite(row.FlinkAllocsRec)
			jr.MapReduceAllocs = finite(row.MapRedAllocsRec)
		} else if rep.Planner {
			jr.PlannerSec = finite(row.PlannerSec)
			jr.OracleSec = finite(row.OracleSec)
			jr.WorstSec = finite(row.WorstSec)
			jr.Regret = finite(row.Regret)
			jr.Replans = finite(row.Replans)
		} else if rep.Latency {
			jr.SparkP50 = finite(row.Spark)
			jr.SparkP99 = finite(row.SparkP99)
			jr.FlinkP50 = finite(row.Flink)
			jr.FlinkP99 = finite(row.FlinkP99)
			if rep.ThreeWay {
				jr.MapReduceP50 = finite(row.MapRed)
				jr.MapReduceP99 = finite(row.MapRedP99)
			}
			jr.SparkUtil = finite(row.SparkUtil)
			jr.FlinkUtil = finite(row.FlinkUtil)
			jr.MapReduceUtil = finite(row.MapRedUtil)
			jr.SparkQD99 = finite(row.SparkQD99)
			jr.FlinkQD99 = finite(row.FlinkQD99)
			jr.MapReduceQD99 = finite(row.MapRedQD99)
		} else {
			jr.Spark = finite(row.Spark)
			jr.SparkStd = finite(row.SparkStd)
			jr.Flink = finite(row.Flink)
			jr.FlinkStd = finite(row.FlinkStd)
			if rep.ThreeWay {
				jr.MapReduce = finite(row.MapRed)
				jr.MapReduceStd = finite(row.MapRedStd)
			}
		}
		out.Rows = append(out.Rows, jr)
	}
	return out
}

// writeJSON writes the collected reports as an indented JSON array.
func writeJSON(name string, reps []*experiments.Report) error {
	out := make([]jsonReport, len(reps))
	for i, rep := range reps {
		out[i] = toJSONReport(rep)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(name, append(data, '\n'), 0o644)
}

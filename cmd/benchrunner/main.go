// Benchrunner regenerates the paper's tables and figures.
//
// Usage:
//
//	benchrunner -run fig1          # one experiment
//	benchrunner -run tab1,ext4     # several, comma-separated
//	benchrunner -run all           # everything, in paper order
//	benchrunner -run ext3 -engines mapreduce   # one engine's numbers only
//	benchrunner -list              # available experiment ids
//	benchrunner -run all -md out.md  # write an EXPERIMENTS-style markdown report
//	benchrunner -run all -json out.json  # machine-readable reports (CI artifact)
//	benchrunner -run ext11 -cpuprofile cpu.pprof -memprofile mem.pprof  # hot-path profiling
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/dataflow"
	_ "repro/internal/dataflow/backend/flinkexec"
	_ "repro/internal/dataflow/backend/mrexec"
	_ "repro/internal/dataflow/backend/sparkexec"
	"repro/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "experiment ids (fig1..fig17, tab1..tab7, ext1..ext11), comma-separated, or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	md := flag.String("md", "", "also write a markdown report to this file")
	jsonOut := flag.String("json", "", "also write the reports as JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after the runs) to this file")
	engines := flag.String("engines", "",
		fmt.Sprintf("comma-separated engine filter (registered: %s); default all",
			strings.Join(dataflow.Names(), ",")))
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			runtime.GC() // flush the final allocation stats before snapshotting
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				os.Exit(2)
			}
		}()
	}

	if *engines != "" {
		// Restrict the experiment runners so one engine's numbers can be
		// regenerated without the full three-way matrix. The engine names
		// are the dataflow backend registry's; SetEngineFilter validates.
		var names []string
		for _, name := range strings.Split(*engines, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		if len(names) == 0 {
			fmt.Fprintf(os.Stderr, "-engines %q names no engine (registered: %s)\n",
				*engines, strings.Join(dataflow.Names(), ", "))
			os.Exit(2)
		}
		if err := experiments.SetEngineFilter(names); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *list {
		for _, id := range experiments.IDs() {
			r, _ := experiments.Get(id)
			fmt.Printf("%-6s %s\n", id, r.Title)
		}
		return
	}
	if *runID == "" {
		fmt.Fprintln(os.Stderr, "usage: benchrunner -run <id>|all [-engines spark,flink,mapreduce] [-md report.md] | -list")
		os.Exit(2)
	}

	var ids []string
	if *runID == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	var mdOut strings.Builder
	var reps []*experiments.Report
	for _, id := range ids {
		r, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		rep, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		reps = append(reps, rep)
		out := rep.Render()
		fmt.Println(out)
		if *md != "" {
			fmt.Fprintf(&mdOut, "### %s — %s\n\n```\n%s```\n\n", rep.ID, rep.Title, out)
		}
	}
	if *md != "" {
		if err := os.WriteFile(*md, []byte(mdOut.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *md, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *md)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, reps); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// Planviz prints both engines' execution plans for the six workloads,
// regenerating the paper's Table I from the engines' planners.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/engine/flink"
	"repro/internal/engine/spark"
	"repro/internal/workloads"
)

func main() {
	spec := cluster.Spec{Nodes: 2, CoresPerNode: 4, MemPerNode: core.GB, DiskSeqMiBps: 100, NetMiBps: 100}
	srt, err := cluster.NewRuntime(spec, 4)
	if err != nil {
		log.Fatal(err)
	}
	frt, err := cluster.NewRuntime(spec, 4)
	if err != nil {
		log.Fatal(err)
	}
	ctx := spark.NewContext(core.NewConfig(), srt, dfs.New(2, 64*core.KB, 1))
	env := flink.NewEnv(core.NewConfig(), frt, dfs.New(2, 64*core.KB, 1))

	for _, p := range workloads.Plans(ctx, env) {
		if err := p.Validate(); err != nil {
			log.Fatalf("invalid plan %s/%s: %v", p.Framework, p.Workload, err)
		}
		fmt.Println(p.String())
	}
}

// Planviz regenerates the paper's Table I from the unified dataflow API:
// every non-graph workload is defined once and lowered onto each
// registered engine's physical plan (spark, flink and the mapreduce
// baseline), followed by the engine-native graph plans.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflow/backend/flinkexec"
	"repro/internal/dataflow/backend/mrexec"
	"repro/internal/dataflow/backend/sparkexec"
	"repro/internal/dfs"
	"repro/internal/workloads"
)

func main() {
	spec := cluster.Spec{Nodes: 2, CoresPerNode: 4, MemPerNode: core.GB, DiskSeqMiBps: 100, NetMiBps: 100}
	newRT := func() *cluster.Runtime {
		rt, err := cluster.NewRuntime(spec, 4)
		if err != nil {
			log.Fatal(err)
		}
		return rt
	}
	newFS := func() *dfs.FS { return dfs.New(2, 64*core.KB, 1) }

	sparkB := sparkexec.New(core.NewConfig(), newRT(), newFS())
	flinkB := flinkexec.New(core.NewConfig(), newRT(), newFS())
	mrB := mrexec.New(core.NewConfig(), newRT(), newFS())

	// One logical definition per workload, three physical plans each.
	for _, b := range []dataflow.Backend{sparkB, flinkB, mrB} {
		for _, p := range workloads.UnifiedPlans(dataflow.NewSession(b)) {
			printPlan(p)
		}
	}
	// The graph workloads stay engine-native (Pregel vs Gelly-style).
	for _, p := range workloads.GraphPlans(sparkB.Context(), flinkB.Env()) {
		printPlan(p)
	}
}

func printPlan(p *core.Plan) {
	if err := p.Validate(); err != nil {
		log.Fatalf("invalid plan %s/%s: %v", p.Framework, p.Workload, err)
	}
	fmt.Println(p.String())
}

// Planviz regenerates the paper's Table I from the unified dataflow API:
// every non-graph workload is defined once and lowered onto each
// registered engine's physical plan (spark, flink and the mapreduce
// baseline), followed by the engine-native graph plans.
//
// With -decide it instead renders the cost-based planner's view: for each
// representative workload the scored candidate table (engine × shuffle
// strategy × codec × parallelism), the chosen configuration and the
// decision trail.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dataflow/backend/flinkexec"
	"repro/internal/dataflow/backend/mrexec"
	"repro/internal/dataflow/backend/sparkexec"
	"repro/internal/dfs"
	"repro/internal/planner"
	"repro/internal/workloads"
)

func main() {
	decide := flag.Bool("decide", false, "print the cost-based planner's chosen config and cost table per workload")
	flag.Parse()

	spec := cluster.Spec{Nodes: 2, CoresPerNode: 4, MemPerNode: core.GB, DiskSeqMiBps: 100, NetMiBps: 100}
	if *decide {
		printDecisions(spec)
		return
	}
	newRT := func() *cluster.Runtime {
		rt, err := cluster.NewRuntime(spec, 4)
		if err != nil {
			log.Fatal(err)
		}
		return rt
	}
	newFS := func() *dfs.FS { return dfs.New(2, 64*core.KB, 1) }

	sparkB := sparkexec.New(core.NewConfig(), newRT(), newFS())
	flinkB := flinkexec.New(core.NewConfig(), newRT(), newFS())
	mrB := mrexec.New(core.NewConfig(), newRT(), newFS())

	// One logical definition per workload, three physical plans each.
	for _, b := range []dataflow.Backend{sparkB, flinkB, mrB} {
		for _, p := range workloads.UnifiedPlans(dataflow.NewSession(b)) {
			printPlan(p)
		}
	}
	// The graph workloads stay engine-native (Pregel vs Gelly-style).
	for _, p := range workloads.GraphPlans(sparkB.Context(), flinkB.Env()) {
		printPlan(p)
	}
}

// printDecisions runs the static planner over one representative spec per
// plan shape and renders each decision: chosen candidate, cost table, trace.
func printDecisions(spec cluster.Spec) {
	pl := &planner.Planner{Provider: &planner.SimCost{Base: core.NewConfig()}, Spec: spec}
	specs := []planner.PlanSpec{
		{Workload: "WordCount", Shape: planner.Aggregate,
			Input: planner.InputStats{Bytes: 768 * 1024}},
		{Workload: "Grep", Shape: planner.Scan,
			Input: planner.InputStats{Bytes: 768 * 1024}},
		{Workload: "TeraSort", Shape: planner.Sort,
			Input: planner.InputStats{Bytes: 1600 * 1024, Records: 16384}},
		{Workload: "KMeans", Shape: planner.Iterate,
			Input: planner.InputStats{Bytes: 256 * 1024, Reused: true}},
	}
	for i, ps := range specs {
		if i > 0 {
			fmt.Println()
		}
		d, err := pl.Plan(ps)
		if err != nil {
			log.Fatalf("plan %s: %v", ps.Workload, err)
		}
		fmt.Printf("== %s (%s, %d KiB) ==\n", ps.Workload, ps.Shape, ps.Input.Bytes/1024)
		fmt.Printf("chosen: %s  est %.3fs\n", d.Chosen, d.Est.Seconds)
		printAligned(d.CostTable())
		for _, ev := range d.Trace.Events() {
			fmt.Printf("  %s\n", ev)
		}
	}
}

// printAligned renders rows with per-column padding, the Report idiom.
func printAligned(rows [][]string) {
	widths := map[int]int{}
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for c, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[c], cell)
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
}

func printPlan(p *core.Plan) {
	if err := p.Validate(); err != nil {
		log.Fatalf("invalid plan %s/%s: %v", p.Framework, p.Workload, err)
	}
	fmt.Println(p.String())
}
